// Package cli implements the fdrepair command line: computing optimal
// and approximate repairs of a CSV table under functional dependencies,
// and explaining the complexity of an FD set under the dichotomy of
// Livshits, Kimelfeld & Roy (PODS'18). It lives in a package (rather
// than in cmd/) so the flag plumbing and CSV round trips are testable;
// cmd/fdrepair is a thin shim over Run.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/fdrepair"
	"repro/internal/fd"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/workload"
)

type fdFlags []string

func (f *fdFlags) String() string     { return strings.Join(*f, "; ") }
func (f *fdFlags) Set(s string) error { *f = append(*f, s); return nil }

// Run executes the CLI with the given arguments (excluding the program
// name), writing to the supplied streams. It returns the process exit
// code.
func Run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "classify":
		err = cmdClassify(args[1:], stdout, stderr)
	case "srepair":
		err = cmdSRepair(args[1:], stdout, stderr)
	case "verify":
		err = cmdVerify(args[1:], stdout, stderr)
	case "batch":
		err = cmdBatch(args[1:], stdout, stderr)
	case "urepair":
		err = cmdURepair(args[1:], stdout, stderr)
	case "mpd":
		err = cmdMPD(args[1:], stdout, stderr)
	case "count":
		err = cmdCount(args[1:], stdout, stderr)
	case "gen":
		err = cmdGen(args[1:], stdout, stderr)
	case "entails":
		err = cmdEntails(args[1:], stdout, stderr)
	case "demo":
		err = cmdDemo(stdout)
	case "-h", "--help", "help":
		usage(stdout)
	default:
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "fdrepair:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: fdrepair <classify|srepair|verify|batch|urepair|mpd|count|gen|entails|demo> [flags]
  classify -attrs A,B,C -fd "A -> B" [-fd ...]     explain the dichotomy for an FD set
  srepair  -in t.csv -fd "A -> B" [-mode auto|exact|approx] [-out s.csv]
  verify   -in t.csv -fd "A -> B" [-out s.csv]     impact report of an optimal S-repair:
           violations per FD and cells changed per block, before vs after
  batch    -in a.csv -in b.csv ... -fd "A -> B"
           [-mode auto|exact|approx|urepair|mpd|cfd|denial|cqa|priority]
           [-outdir DIR] [-workers N] [-timeout 30s]   repair many CSVs as one batch
           constraint-extension modes: -mode cfd -cfd "X -> A | p,_ -> _";
           -mode denial -dc "t1.a < t2.a & ...";  -mode cqa -project A,B
           [-where attr=value];  -mode priority [-prefer id>id]
  urepair  -in t.csv -fd "A -> B" [-out u.csv]
  mpd      -in t.csv -fd "A -> B" [-out m.csv]     weights read as probabilities
  count    -in t.csv -fd "A -> B" [-list N]        count/enumerate subset repairs
  gen      [-kind dirty|uniform|zipf|flights|office] [-n 100] [-dirty 0.1] [-out t.csv]
  entails  -attrs A,B,C -fd "A -> B" -fd "B -> C" -check "A -> C"   derivation proof
  demo                                             run the paper's Figure-1 example

srepair/urepair/mpd solver flags: -workers N (parallel blocks),
-timeout 30s (abort the solve on a deadline), -stats (print solve
counters to stderr). In batch mode the worker budget is shared by the
whole batch and -timeout is a per-request deadline: one slow file
times out alone while the rest of the batch completes.`)
}

func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// solverFlags registers the per-solve engine flags shared by the
// repair commands (srepair, urepair, mpd) and returns a builder that
// turns them into a configured fdrepair.Solver plus a cleanup function
// (cancelling the deadline context) and a stats reporter (a no-op
// unless -stats was given).
func solverFlags(fs *flag.FlagSet) func(stderr io.Writer) (*fdrepair.Solver, func(), func()) {
	workers := fs.Int("workers", 1, "worker budget for independent repair blocks (1 = serial)")
	timeout := fs.Duration("timeout", 0, "abort the solve after this duration (0 = no deadline)")
	stats := fs.Bool("stats", false, "print solve counters (nodes, scheduler tasks, matcher paths, planner decisions, arena reuse) to stderr")
	return func(stderr io.Writer) (*fdrepair.Solver, func(), func()) {
		opts := []fdrepair.SolverOption{fdrepair.WithParallelism(*workers)}
		cancel := func() {}
		if *timeout > 0 {
			var ctx context.Context
			ctx, cancel = context.WithTimeout(context.Background(), *timeout)
			opts = append(opts, fdrepair.WithContext(ctx))
		}
		if *stats {
			opts = append(opts, fdrepair.WithStats())
		}
		sv := fdrepair.NewSolver(opts...)
		report := func() {}
		if *stats {
			report = func() {
				s := sv.Stats()
				fmt.Fprintf(stderr, "solve stats: nodes=%d tasks(inline/executed/stolen/tiny-inlined)=%d/%d/%d/%d matcher(fast/dense/sparse)=%d/%d/%d arena(hit/miss)=%d/%d\n",
					s.Nodes, s.BlocksSerial, s.BlocksParallel, s.Steals, s.TasksInlined,
					s.MatcherFastPath, s.MatcherDense, s.MatcherSparse,
					s.ArenaHits, s.ArenaMisses)
				if s.PlannerComponents > 0 {
					fmt.Fprintf(stderr, "planner stats: components=%d won(trivial/keyswap/commonlhs/approx)=%d/%d/%d/%d consensus=%d max-component-fds=%d\n",
						s.PlannerComponents, s.PlannerTrivial, s.PlannerKeySwap,
						s.PlannerCommonLHS, s.PlannerApprox, s.PlannerConsensus,
						s.PlannerMaxCompFDs)
				}
			}
		}
		return sv, cancel, report
	}
}

// loadTable streams a CSV file through the chunked ingester: peak
// memory is the encoded table plus one chunk, not the file size (see
// table.IngestCSV).
func loadTable(path string) (*fdrepair.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return table.IngestCSV(f, "T")
}

func parseFDs(sc *fdrepair.Schema, specs fdFlags) (*fdrepair.FDSet, error) {
	if len(specs) == 0 {
		return nil, errors.New("at least one -fd is required")
	}
	return fdrepair.ParseFDs(sc, specs...)
}

func writeOut(t *fdrepair.Table, path string, stdout io.Writer) error {
	if path == "" {
		fmt.Fprint(stdout, t.String())
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// writeDiff prints the human-readable change summary of a repair.
func writeDiff(orig, repaired *fdrepair.Table, stdout io.Writer) error {
	d, err := table.DiffTables(orig, repaired)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, d.Render(orig.Schema()))
	return nil
}

func cmdClassify(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("classify", stderr)
	attrs := fs.String("attrs", "", "comma-separated attribute list")
	var specs fdFlags
	fs.Var(&specs, "fd", "functional dependency \"X -> Y\" (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *attrs == "" {
		return errors.New("-attrs is required")
	}
	sc, err := fdrepair.NewSchema("R", strings.Split(*attrs, ",")...)
	if err != nil {
		return err
	}
	ds, err := parseFDs(sc, specs)
	if err != nil {
		return err
	}
	info := fdrepair.Classify(ds)
	fmt.Fprintf(stdout, "FD set: %v\n", ds)
	fmt.Fprintf(stdout, "simplification: %s\n", fdrepair.ExplainTrace(info))
	if info.SRepairPolyTime {
		fmt.Fprintln(stdout, "optimal S-repair: polynomial time (OptSRepair succeeds; Theorem 3.4)")
		fmt.Fprintln(stdout, "most probable database: polynomial time (Theorem 3.10)")
	} else {
		fmt.Fprintf(stdout, "optimal S-repair: APX-complete (%s)\n", info.HardClass)
		fmt.Fprintln(stdout, "most probable database: NP-hard (Theorem 3.10)")
		fmt.Fprintln(stdout, "fallback: 2-approximation available (Proposition 3.3)")
	}
	if info.URepairExact {
		fmt.Fprintln(stdout, "optimal U-repair: polynomial time (Section 4 cases)")
	} else {
		fmt.Fprintln(stdout, "optimal U-repair: not known tractable; combined approximation of Section 4.4 applies")
	}
	return nil
}

func cmdSRepair(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("srepair", stderr)
	in := fs.String("in", "", "input CSV")
	out := fs.String("out", "", "output CSV (default: print)")
	mode := fs.String("mode", "auto", "auto | exact | approx")
	diff := fs.Bool("diff", false, "print a change summary instead of the table")
	newSolver := solverFlags(fs)
	var specs fdFlags
	fs.Var(&specs, "fd", "functional dependency (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("-in is required")
	}
	t, err := loadTable(*in)
	if err != nil {
		return err
	}
	ds, err := parseFDs(t.Schema(), specs)
	if err != nil {
		return err
	}
	sv, cancel, report := newSolver(stderr)
	defer cancel()
	var rep *fdrepair.Table
	var cost float64
	switch *mode {
	case "auto":
		rep, cost, err = sv.OptimalSRepair(ds, t)
		if errors.Is(err, srepair.ErrNoSimplification) {
			fmt.Fprintln(stderr, "note: FD set is APX-hard; using the 2-approximation (pass -mode exact for the exponential baseline)")
			rep, cost, err = sv.ApproxSRepair(ds, t)
		}
	case "exact":
		rep, cost, err = sv.ExactSRepair(ds, t)
	case "approx":
		rep, cost, err = sv.ApproxSRepair(ds, t)
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "deleted weight (dist_sub): %g; kept %d of %d tuples\n", cost, rep.Len(), t.Len())
	report()
	if *diff {
		return writeDiff(t, rep, stdout)
	}
	return writeOut(rep, *out, stdout)
}

// cmdVerify runs an optimal S-repair through a resident session with
// impact recording and prints the before/after report the session's
// dirty-set machinery collects: violation counts per FD and cells
// changed per block.
func cmdVerify(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("verify", stderr)
	in := fs.String("in", "", "input CSV")
	out := fs.String("out", "", "also write the repaired table to this CSV")
	newSolver := solverFlags(fs)
	var specs fdFlags
	fs.Var(&specs, "fd", "functional dependency (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("-in is required")
	}
	t, err := loadTable(*in)
	if err != nil {
		return err
	}
	ds, err := parseFDs(t.Schema(), specs)
	if err != nil {
		return err
	}
	sv, cancel, report := newSolver(stderr)
	defer cancel()
	sess, err := fdrepair.NewSession(sv, ds, t, fdrepair.WithImpactRecording())
	if err != nil {
		return err
	}
	rep, cost, err := sess.Repair()
	if err != nil {
		return err
	}
	report()
	im := sess.LastImpact()
	st := sess.Stats()
	fmt.Fprintf(stdout, "impact: %d rows, %d blocks (%d solved, %d reused), deleted weight (dist_sub) %g\n",
		st.Rows, st.Blocks, st.BlocksSolved, st.BlocksReused, cost)
	fmt.Fprintf(stdout, "%-40s %8s %8s\n", "FD", "before", "after")
	for _, v := range im.Violations {
		fmt.Fprintf(stdout, "%-40s %8d %8d\n", v.FD, v.Before, v.After)
	}
	changed, cells := 0, 0
	for _, b := range im.Blocks {
		if b.CellsChanged > 0 {
			changed++
			cells += b.CellsChanged
		}
	}
	if changed > 0 {
		fmt.Fprintf(stdout, "%-10s %6s %6s %14s %7s\n", "block@row", "rows", "kept", "cells-changed", "reused")
		for _, b := range im.Blocks {
			if b.CellsChanged == 0 {
				continue
			}
			reused := "no"
			if b.Reused {
				reused = "yes"
			}
			fmt.Fprintf(stdout, "%-10d %6d %6d %14d %7s\n", b.FirstRow, b.Rows, b.Kept, b.CellsChanged, reused)
		}
	}
	fmt.Fprintf(stdout, "total: %d of %d blocks changed, %d cells changed, kept %d of %d tuples\n",
		changed, st.Blocks, cells, rep.Len(), t.Len())
	if *out != "" {
		return writeOut(rep, *out, stdout)
	}
	return nil
}

// cmdBatch repairs many CSV files as one batch on a single Solver:
// the requests share the worker budget, scheduler and scratch arenas,
// while each keeps its own solve scope (hints sized to its own table,
// its own -timeout deadline, its own error). One failed or timed-out
// file is reported and exits non-zero, but never stops the others.
func cmdBatch(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("batch", stderr)
	var ins fdFlags
	fs.Var(&ins, "in", "input CSV (repeatable; one request per file)")
	outdir := fs.String("outdir", "", "write each repaired table to this directory under its input's base name (default: print)")
	mode := fs.String("mode", "auto", "auto | exact | approx | urepair | mpd | cfd | denial | cqa | priority")
	workers := fs.Int("workers", 1, "worker budget shared by the whole batch (1 = serial)")
	timeout := fs.Duration("timeout", 0, "per-request deadline; a slow file times out alone (0 = none)")
	stats := fs.Bool("stats", false, "print per-request solve counters to stderr")
	var specs fdFlags
	fs.Var(&specs, "fd", "functional dependency (repeatable; parsed against each file's header)")
	var cfdSpecs, dcSpecs, whereSpecs, preferSpecs fdFlags
	fs.Var(&cfdSpecs, "cfd", `conditional FD "X -> A | p1,p2 -> pA" (repeatable; -mode cfd)`)
	fs.Var(&dcSpecs, "dc", `denial constraint such as "t1.rank < t2.rank & t1.salary > t2.salary" (repeatable; -mode denial)`)
	project := fs.String("project", "", "comma-separated projection attributes (-mode cqa)")
	fs.Var(&whereSpecs, "where", `equality filter "attr=value" (repeatable; -mode cqa)`)
	fs.Var(&preferSpecs, "prefer", `tuple priority "id>id" (repeatable; -mode priority)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(ins) == 0 {
		return errors.New("at least one -in is required")
	}
	var algo fdrepair.Algorithm
	switch *mode {
	case "auto":
		algo = fdrepair.AlgoOptimalSRepair
	case "exact":
		algo = fdrepair.AlgoExactSRepair
	case "approx":
		algo = fdrepair.AlgoApproxSRepair
	case "urepair":
		algo = fdrepair.AlgoOptimalURepair
	case "mpd":
		algo = fdrepair.AlgoMostProbable
	case "cfd":
		algo = fdrepair.AlgoCFDSRepair
		if len(cfdSpecs) == 0 {
			return errors.New("at least one -cfd is required with -mode cfd")
		}
	case "denial":
		algo = fdrepair.AlgoDenialSRepair
		if len(dcSpecs) == 0 && len(specs) == 0 {
			return errors.New("-mode denial needs -dc or -fd constraints")
		}
	case "cqa":
		algo = fdrepair.AlgoCQA
		if *project == "" {
			return errors.New("-project is required with -mode cqa")
		}
	case "priority":
		algo = fdrepair.AlgoPriorityRepair
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
		// Outputs are keyed by input base name; two inputs sharing one
		// would silently clobber each other in -outdir.
		seen := make(map[string]string, len(ins))
		for _, path := range ins {
			base := filepath.Base(path)
			if prev, dup := seen[base]; dup {
				return fmt.Errorf("-outdir would write %s for both %s and %s; rename an input", base, prev, path)
			}
			seen[base] = path
		}
	}
	reqs := make([]fdrepair.Request, 0, len(ins))
	for _, path := range ins {
		t, err := loadTable(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		req := fdrepair.Request{Table: t, Algorithm: algo}
		// -mode cfd repairs under -cfd constraints alone; -mode denial
		// may run from -dc constraints without an FD set.
		if algo != fdrepair.AlgoCFDSRepair && (algo != fdrepair.AlgoDenialSRepair || len(specs) > 0) {
			req.FDs, err = parseFDs(t.Schema(), specs)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
		switch algo {
		case fdrepair.AlgoCFDSRepair:
			for _, spec := range cfdSpecs {
				c, err := fdrepair.ParseConditionalFD(t.Schema(), spec)
				if err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
				req.CFDs = append(req.CFDs, c)
			}
		case fdrepair.AlgoDenialSRepair:
			for _, spec := range dcSpecs {
				c, err := fdrepair.ParseDenial(t.Schema(), spec)
				if err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
				req.Denial = append(req.Denial, c)
			}
		case fdrepair.AlgoCQA:
			var filters []fdrepair.CQAFilter
			for _, cond := range whereSpecs {
				attr, val, ok := strings.Cut(cond, "=")
				pos, known := t.Schema().AttrIndex(strings.TrimSpace(attr))
				if !ok || !known {
					return fmt.Errorf("%s: bad -where %q (want attr=value)", path, cond)
				}
				filters = append(filters, fdrepair.CQAFilter{Attr: pos, Value: val})
			}
			req.Query, err = fdrepair.NewCQAQuery(t.Schema(), strings.Split(*project, ","), filters...)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		case fdrepair.AlgoPriorityRepair:
			rel := fdrepair.NewPriority()
			for _, p := range preferSpecs {
				a, b, ok := strings.Cut(p, ">")
				ai, errA := strconv.Atoi(strings.TrimSpace(a))
				bi, errB := strconv.Atoi(strings.TrimSpace(b))
				if !ok || errA != nil || errB != nil {
					return fmt.Errorf("%s: bad -prefer %q (want id>id)", path, p)
				}
				rel.Add(ai, bi)
			}
			req.Priority = rel
		}
		reqs = append(reqs, req)
	}
	opts := []fdrepair.SolverOption{fdrepair.WithParallelism(*workers)}
	if *stats {
		opts = append(opts, fdrepair.WithStats())
	}
	sv := fdrepair.NewSolver(opts...)
	var bopts []fdrepair.BatchOption
	if *timeout > 0 {
		bopts = append(bopts, fdrepair.WithRequestTimeout(*timeout))
	}
	results := sv.SolveBatch(reqs, bopts...)
	if *mode == "auto" {
		// Same semantics as `srepair -mode auto`: files whose FD set is
		// on the hard side of the dichotomy fall back to the
		// 2-approximation instead of failing the file.
		var retry []fdrepair.Request
		var retryIdx []int
		for _, res := range results {
			if errors.Is(res.Err, srepair.ErrNoSimplification) {
				fmt.Fprintf(stderr, "%s: note: FD set is APX-hard; using the 2-approximation (pass -mode exact for the exponential baseline)\n", ins[res.Index])
				req := reqs[res.Index]
				req.Algorithm = fdrepair.AlgoApproxSRepair
				retry = append(retry, req)
				retryIdx = append(retryIdx, res.Index)
			}
		}
		if len(retry) > 0 {
			for i, res := range sv.SolveBatch(retry, bopts...) {
				res.Index = retryIdx[i]
				results[retryIdx[i]] = res
			}
		}
	}
	var firstErr error
	for _, res := range results {
		name := ins[res.Index]
		if res.Err != nil {
			fmt.Fprintf(stderr, "%s: error: %v\n", name, res.Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", name, res.Err)
			}
			continue
		}
		in := reqs[res.Index].Table
		switch {
		case res.URepair != nil:
			status := "optimal"
			if !res.URepair.Exact {
				status = fmt.Sprintf("approximate (ratio ≤ %g)", res.URepair.RatioBound)
			}
			fmt.Fprintf(stderr, "%s: dist_upd=%g; %s; method: %s\n", name, res.Cost, status, res.URepair.Method)
		case res.CQA != nil:
			fmt.Fprintf(stderr, "%s: %d certain / %d possible answers across %d subset repairs\n",
				name, len(res.CQA.Certain), len(res.CQA.Possible), res.CQA.Repairs)
		case algo == fdrepair.AlgoMostProbable:
			fmt.Fprintf(stderr, "%s: most probable database keeps %d of %d tuples, probability %.6g\n",
				name, res.Table.Len(), in.Len(), res.Cost)
		case res.CFD != nil:
			fmt.Fprintf(stderr, "%s: dist_sub=%g (forced deletions: %d, weight %g); kept %d of %d tuples\n",
				name, res.Cost, len(res.CFD.Forced), res.CFD.ForcedCost, res.Table.Len(), in.Len())
		default:
			fmt.Fprintf(stderr, "%s: dist_sub=%g; kept %d of %d tuples\n",
				name, res.Cost, res.Table.Len(), in.Len())
		}
		if *stats {
			s := res.Stats
			fmt.Fprintf(stderr, "%s: solve stats: nodes=%d tasks(inline/executed/stolen/tiny-inlined)=%d/%d/%d/%d arena(hit/miss)=%d/%d\n",
				name, s.Nodes, s.BlocksSerial, s.BlocksParallel, s.Steals, s.TasksInlined, s.ArenaHits, s.ArenaMisses)
		}
		if res.CQA != nil {
			// CQA produces answer sets, not a repaired table: the certain
			// answers print as projected CSV rows.
			fmt.Fprintf(stdout, "== %s ==\n", name)
			fmt.Fprintln(stdout, *project)
			for _, tup := range res.CQA.Certain {
				fmt.Fprintln(stdout, strings.Join(tup, ","))
			}
			continue
		}
		if *outdir != "" {
			if err := writeOut(res.Table, filepath.Join(*outdir, filepath.Base(name)), stdout); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(stdout, "== %s ==\n", name)
		if err := writeOut(res.Table, "", stdout); err != nil {
			return err
		}
	}
	return firstErr
}

func cmdURepair(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("urepair", stderr)
	in := fs.String("in", "", "input CSV")
	out := fs.String("out", "", "output CSV (default: print)")
	diff := fs.Bool("diff", false, "print a change summary instead of the table")
	newSolver := solverFlags(fs)
	var specs fdFlags
	fs.Var(&specs, "fd", "functional dependency (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("-in is required")
	}
	t, err := loadTable(*in)
	if err != nil {
		return err
	}
	ds, err := parseFDs(t.Schema(), specs)
	if err != nil {
		return err
	}
	sv, cancel, report := newSolver(stderr)
	defer cancel()
	res, err := sv.OptimalURepair(ds, t)
	if err != nil {
		return err
	}
	status := "optimal"
	if !res.Exact {
		status = fmt.Sprintf("approximate (ratio ≤ %g)", res.RatioBound)
	}
	fmt.Fprintf(stderr, "updated-cell cost (dist_upd): %g; %s; method: %s\n", res.Cost, status, res.Method)
	report()
	if *diff {
		return writeDiff(t, res.Update, stdout)
	}
	return writeOut(res.Update, *out, stdout)
}

func cmdMPD(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("mpd", stderr)
	in := fs.String("in", "", "input CSV (weights are probabilities in (0,1])")
	out := fs.String("out", "", "output CSV (default: print)")
	newSolver := solverFlags(fs)
	var specs fdFlags
	fs.Var(&specs, "fd", "functional dependency (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("-in is required")
	}
	t, err := loadTable(*in)
	if err != nil {
		return err
	}
	ds, err := parseFDs(t.Schema(), specs)
	if err != nil {
		return err
	}
	sv, cancel, report := newSolver(stderr)
	defer cancel()
	s, p, err := sv.MostProbableDatabase(ds, t)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "most probable database: %d of %d tuples, probability %.6g\n", s.Len(), t.Len(), p)
	report()
	return writeOut(s, *out, stdout)
}

func cmdCount(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("count", stderr)
	in := fs.String("in", "", "input CSV")
	list := fs.Int("list", 0, "also print up to N repairs")
	var specs fdFlags
	fs.Var(&specs, "fd", "functional dependency (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("-in is required")
	}
	t, err := loadTable(*in)
	if err != nil {
		return err
	}
	ds, err := parseFDs(t.Schema(), specs)
	if err != nil {
		return err
	}
	c, err := fdrepair.CountSRepairs(ds, t)
	if err != nil {
		return err
	}
	chain := "chain FD set: polynomial counting"
	if !ds.Canonical().IsChain() {
		chain = "non-chain FD set: counted by bounded enumeration (#P-complete in general)"
	}
	fmt.Fprintf(stdout, "subset repairs: %v (%s)\n", c, chain)
	if *list > 0 {
		reps, _, err := fdrepair.SubsetRepairs(ds, t, *list)
		if err != nil {
			return err
		}
		for _, r := range reps {
			fmt.Fprintf(stdout, "  keep %v (deleted weight %g)\n", r.IDs(), fdrepair.DistSub(r, t))
		}
	}
	return nil
}

func cmdDemo(stdout io.Writer) error {
	_, ds, t := workload.Office()
	fmt.Fprintln(stdout, "Running example (Figure 1): table T over Office(facility, room, floor, city)")
	fmt.Fprint(stdout, t.String())
	info := fdrepair.Classify(ds)
	fmt.Fprintf(stdout, "\nFD set: %v\nsimplification: %s\n\n", ds, fdrepair.ExplainTrace(info))
	s, cost, err := fdrepair.OptimalSRepair(ds, t)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "optimal S-repair (dist_sub = %g):\n%s\n", cost, s.String())
	res, err := fdrepair.OptimalURepair(ds, t)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "optimal U-repair (dist_upd = %g, method %s):\n%s", res.Cost, res.Method, res.Update.String())
	return nil
}

// cmdEntails checks Δ ⊧ X → Y and prints an Armstrong-style derivation
// when it holds.
func cmdEntails(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("entails", stderr)
	attrs := fs.String("attrs", "", "comma-separated attribute list")
	check := fs.String("check", "", "the FD to prove, e.g. \"A -> C\"")
	var specs fdFlags
	fs.Var(&specs, "fd", "functional dependency (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *attrs == "" || *check == "" {
		return errors.New("-attrs and -check are required")
	}
	sc, err := fdrepair.NewSchema("R", strings.Split(*attrs, ",")...)
	if err != nil {
		return err
	}
	ds, err := parseFDs(sc, specs)
	if err != nil {
		return err
	}
	target, err := fd.Parse(sc, *check)
	if err != nil {
		return err
	}
	steps, ok := ds.Explain(target)
	if !ok {
		fmt.Fprintf(stdout, "%s is NOT entailed by %v\n", ds.FDString(target), ds)
		return nil
	}
	fmt.Fprint(stdout, ds.RenderDerivation(target, steps))
	return nil
}
