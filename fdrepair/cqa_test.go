package fdrepair

import (
	"testing"

	"repro/internal/workload"
)

func TestConsistentAnswersFacade(t *testing.T) {
	sc, ds, tab := workload.Office()
	fac, _ := sc.AttrIndex("facility")
	q, err := NewCQAQuery(sc, []string{"city"}, CQAFilter{Attr: fac, Value: "HQ"})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ConsistentAnswers(ds, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Certain) != 0 || len(ans.Possible) != 2 || ans.Repairs != 2 {
		t.Fatalf("answers = %+v", ans)
	}
	if _, err := NewCQAQuery(sc, []string{"bogus"}); err == nil {
		t.Error("unknown projection attribute must fail")
	}
}
