package fdrepair

import (
	"repro/internal/cfd"
)

// ConditionalFD is a conditional functional dependency (X → A, tp):
// an FD scoped by a pattern of constants and wildcards (Bohannon et
// al.; §5 future work). Unlike plain FDs, CFDs admit single-tuple
// violations, which become forced deletions in subset repairs.
type ConditionalFD = cfd.CFD

// CFDResult is a subset repair under CFDs with its forced-deletion
// accounting.
type CFDResult = cfd.Result

// CFDWildcard is the pattern entry matching any value.
const CFDWildcard = cfd.Wildcard

// NewConditionalFD builds a CFD from an embedded FD spec such as
// "country areaCode -> city", an lhs pattern (one entry per lhs
// attribute, constants or CFDWildcard) and an rhs pattern entry.
func NewConditionalFD(sc *Schema, spec string, lhsPattern []string, rhsPattern string) (*ConditionalFD, error) {
	f, err := parseSingleFD(sc, spec)
	if err != nil {
		return nil, err
	}
	return cfd.New(sc, f, lhsPattern, rhsPattern)
}

// CFDSatisfies reports whether the table satisfies every CFD.
func CFDSatisfies(cs []*ConditionalFD, t *Table) bool { return cfd.Satisfies(cs, t) }

// ExactCFDSRepair computes an optimal subset repair under CFDs: unary
// violators are deleted outright, the remaining pairwise conflicts are
// resolved by exact minimum-weight vertex cover (size-guarded).
func ExactCFDSRepair(cs []*ConditionalFD, t *Table) (CFDResult, error) {
	return cfd.ExactSRepair(cs, t)
}

// ApproxCFDSRepair is the polynomial 2-approximation under CFDs.
func ApproxCFDSRepair(cs []*ConditionalFD, t *Table) (CFDResult, error) {
	return cfd.Approx2SRepair(cs, t)
}
