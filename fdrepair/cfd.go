package fdrepair

import (
	"fmt"
	"strings"

	"repro/internal/cfd"
)

// ConditionalFD is a conditional functional dependency (X → A, tp):
// an FD scoped by a pattern of constants and wildcards (Bohannon et
// al.; §5 future work). Unlike plain FDs, CFDs admit single-tuple
// violations, which become forced deletions in subset repairs.
type ConditionalFD = cfd.CFD

// CFDResult is a subset repair under CFDs with its forced-deletion
// accounting.
type CFDResult = cfd.Result

// CFDWildcard is the pattern entry matching any value.
const CFDWildcard = cfd.Wildcard

// NewConditionalFD builds a CFD from an embedded FD spec such as
// "country areaCode -> city", an lhs pattern (one entry per lhs
// attribute, constants or CFDWildcard) and an rhs pattern entry.
func NewConditionalFD(sc *Schema, spec string, lhsPattern []string, rhsPattern string) (*ConditionalFD, error) {
	f, err := parseSingleFD(sc, spec)
	if err != nil {
		return nil, err
	}
	return cfd.New(sc, f, lhsPattern, rhsPattern)
}

// CFDSatisfies reports whether the table satisfies every CFD.
func CFDSatisfies(cs []*ConditionalFD, t *Table) bool { return cfd.Satisfies(cs, t) }

// ExactCFDSRepair computes an optimal subset repair under CFDs: unary
// violators are deleted outright, the remaining pairwise conflicts are
// resolved by exact minimum-weight vertex cover (size-guarded).
func ExactCFDSRepair(cs []*ConditionalFD, t *Table) (CFDResult, error) {
	return cfd.ExactSRepair(cs, t)
}

// ApproxCFDSRepair is the polynomial 2-approximation under CFDs.
func ApproxCFDSRepair(cs []*ConditionalFD, t *Table) (CFDResult, error) {
	return cfd.Approx2SRepair(cs, t)
}

// ParseConditionalFD parses a CFD from one textual spec: the embedded
// FD, optionally followed by "|" and a pattern tableau row, e.g.
//
//	"country areaCode -> city | 44,_ -> _"
//
// Pattern entries (constants or "_", one per lhs attribute in schema
// order, then one for the rhs) condition when the FD applies; without a
// "|" part every entry is a wildcard, i.e. the plain FD.
func ParseConditionalFD(sc *Schema, spec string) (*ConditionalFD, error) {
	embSpec, patSpec, hasPat := strings.Cut(spec, "|")
	f, err := parseSingleFD(sc, strings.TrimSpace(embSpec))
	if err != nil {
		return nil, err
	}
	if !hasPat {
		return cfd.FromFD(sc, f)
	}
	lhsPart, rhsPat, ok := strings.Cut(patSpec, "->")
	if !ok {
		return nil, fmt.Errorf("fdrepair: CFD pattern %q: missing \"->\"", strings.TrimSpace(patSpec))
	}
	var lhsPat []string
	if s := strings.TrimSpace(lhsPart); s != "" {
		for _, p := range strings.Split(s, ",") {
			lhsPat = append(lhsPat, strings.TrimSpace(p))
		}
	}
	return cfd.New(sc, f, lhsPat, strings.TrimSpace(rhsPat))
}

// ExactCFDSRepair is the Solver-scoped ExactCFDSRepair: the conflict
// instance is built on the encoded engine under this solver's budget,
// arenas, cancellation and stats, and the branch-and-bound cover search
// honors the solver's deadline.
func (s *Solver) ExactCFDSRepair(cs []*ConditionalFD, t *Table) (CFDResult, error) {
	if err := s.begin(); err != nil {
		return CFDResult{}, err
	}
	defer s.end()
	return cfd.ExactSRepairCtx(s.ctx, cs, t)
}

// ApproxCFDSRepair is the Solver-scoped ApproxCFDSRepair on the encoded
// engine: linear in rows and conflict edges instead of quadratic in
// rows, with pattern groups fanned across the solver's workers.
func (s *Solver) ApproxCFDSRepair(cs []*ConditionalFD, t *Table) (CFDResult, error) {
	if err := s.begin(); err != nil {
		return CFDResult{}, err
	}
	defer s.end()
	return cfd.Approx2SRepairCtx(s.ctx, cs, t)
}
