package fdrepair

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cfd"
	"repro/internal/cqa"
	"repro/internal/denial"
	"repro/internal/mpd"
	"repro/internal/priority"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
)

// ErrStreamClosed is returned by Stream.Submit after Close: the stream
// admits no further requests (results of already-submitted requests
// still drain through Results).
var ErrStreamClosed = errors.New("fdrepair: Submit on a closed Stream")

// Algorithm selects the repair computation a batch Request runs.
type Algorithm int

const (
	// AlgoOptimalSRepair is Solver.OptimalSRepair (Algorithm 1; fails
	// with srepair.ErrNoSimplification on the hard side of the
	// dichotomy). The zero value, so the default for a Request.
	AlgoOptimalSRepair Algorithm = iota
	// AlgoExactSRepair is Solver.ExactSRepair (exponential baseline).
	AlgoExactSRepair
	// AlgoApproxSRepair is Solver.ApproxSRepair (2-approximation).
	AlgoApproxSRepair
	// AlgoOptimalURepair is Solver.OptimalURepair; the update and its
	// guarantees are returned in BatchResult.URepair.
	AlgoOptimalURepair
	// AlgoMostProbable is Solver.MostProbableDatabase; Cost carries the
	// probability.
	AlgoMostProbable
	// AlgoCFDSRepair repairs under the request's conditional FDs
	// (Request.CFDs) on the encoded engine: forced unary violators plus
	// the polynomial 2-approximate conflict cover. The full
	// forced-deletion accounting lands in BatchResult.CFD.
	AlgoCFDSRepair
	// AlgoDenialSRepair repairs under the request's binary denial
	// constraints (Request.Denial; when empty, the request's FDs are
	// translated via FDsAsDenial) with the polynomial 2-approximate
	// cover on the encoded engine.
	AlgoDenialSRepair
	// AlgoCQA computes the certain/possible answers of Request.Query
	// under the request's FDs on the encoded component-factorized
	// engine; the answers land in BatchResult.CQA.
	AlgoCQA
	// AlgoPriorityRepair computes the completion-optimal repair under
	// Request.Priority (nil = no preferences) on the encoded engine.
	AlgoPriorityRepair
)

// String names the algorithm for reports and CLI summaries.
func (a Algorithm) String() string {
	switch a {
	case AlgoOptimalSRepair:
		return "optimal-srepair"
	case AlgoExactSRepair:
		return "exact-srepair"
	case AlgoApproxSRepair:
		return "approx-srepair"
	case AlgoOptimalURepair:
		return "optimal-urepair"
	case AlgoMostProbable:
		return "most-probable"
	case AlgoCFDSRepair:
		return "cfd-srepair"
	case AlgoDenialSRepair:
		return "denial-srepair"
	case AlgoCQA:
		return "cqa"
	case AlgoPriorityRepair:
		return "priority-repair"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Request is one unit of batch/stream work: a table, the FD set to
// repair it under, the algorithm to run, and an optional per-request
// cancellation context. A Request with a nil Context inherits the
// solver's base context (WithContext); a non-nil Context replaces it
// for this request, and WithRequestTimeout derives a deadline from
// whichever applies.
type Request struct {
	FDs       *FDSet
	Table     *Table
	Algorithm Algorithm
	Context   context.Context

	// CFDs is the constraint set for AlgoCFDSRepair (FDs is unused).
	CFDs []*ConditionalFD
	// Denial is the constraint set for AlgoDenialSRepair; when empty,
	// the request's FDs are translated via FDsAsDenial.
	Denial []*DenialConstraint
	// Query is the selection–projection query for AlgoCQA.
	Query *CQAQuery
	// Priority is the preference relation for AlgoPriorityRepair; nil
	// means no preferences (insertion order decides ties).
	Priority *PriorityRelation
}

// BatchResult is the outcome of one Request. Exactly one of Table (for
// the S-repair and MPD algorithms) or URepair (for AlgoOptimalURepair)
// is set on success; Err carries the request's own failure — a
// cancelled or failed request never poisons its batch siblings.
type BatchResult struct {
	// Index is the request's position in the SolveBatch input slice (or
	// its Stream submission order), so streamed results can be
	// correlated out of completion order.
	Index int
	// Table is the repair: a consistent subset for the S-repair
	// algorithms, the most probable database for AlgoMostProbable.
	Table *Table
	// Cost is dist_sub for the S-repair algorithms and the subset's
	// probability for AlgoMostProbable; for AlgoOptimalURepair see
	// URepair.Cost.
	Cost float64
	// URepair is the full update-repair outcome for AlgoOptimalURepair.
	URepair *URepairResult
	// Err is the request's error (context.DeadlineExceeded on a missed
	// per-request deadline, srepair.ErrNoSimplification on a hard FD
	// set under AlgoOptimalSRepair, a *PanicError when the request's
	// solve panicked and was isolated, ...).
	Err error
	// Degraded reports that WithApproxFallback kicked in: the exact
	// solve exceeded its budget and Table/Cost carry the polynomial
	// 2-approximation instead.
	Degraded bool
	// CFD carries the full forced-deletion accounting of an
	// AlgoCFDSRepair request (Table and Cost mirror its Repair and
	// TotalCost).
	CFD *CFDResult
	// CQA carries the certain/possible answers of an AlgoCQA request
	// (no Table is produced).
	CQA *CQAAnswers
	// Stats is this request's own counter slice (zero unless the Solver
	// was built WithStats). The solver's aggregate Stats still
	// accumulates every request.
	Stats SolveStats
}

// batchConfig collects per-batch option values.
type batchConfig struct {
	timeout     time.Duration
	approxAfter time.Duration
}

// BatchOption configures SolveBatch and NewStream.
type BatchOption func(*batchConfig)

// WithRequestTimeout gives every request in the batch (or stream) its
// own deadline of d, measured from the moment the request starts
// running: one slow or huge table times out alone while the rest of
// the batch completes. The deadline composes with the request's own
// Context (when set; else with the solver's base context) to the
// earliest deadline: whichever of the two expires first cancels the
// request, in either order.
func WithRequestTimeout(d time.Duration) BatchOption {
	return func(c *batchConfig) { c.timeout = d }
}

// WithApproxFallback bounds AlgoExactSRepair requests with a budget d:
// the exponential exact solve runs under its own deadline of d and, if
// it exceeds it while the request's overall deadline still has room,
// the request degrades to the polynomial 2-approximation
// (AlgoApproxSRepair semantics) instead of failing — BatchResult
// carries the approximate repair with Degraded set. A request whose
// own deadline expired (not just the exact budget) still fails with
// context.DeadlineExceeded. Other algorithms are unaffected.
func WithApproxFallback(d time.Duration) BatchOption {
	return func(c *batchConfig) { c.approxAfter = d }
}

// SolveBatch runs many repair requests on this Solver and returns one
// BatchResult per request, index-aligned with reqs (and with Index set,
// so callers may also sort or merge streamed copies). The requests are
// admitted as tasks on the solver's one work-stealing scheduler —
// alongside the block-level tasks their own recursions spawn — so a
// mixed-size batch keeps every worker busy without over-subscribing
// the budget; on a serial Solver the batch runs sequentially.
//
// Each request executes under its own solve scope: its own size hints
// (a 100-row request next to a 100k-row request pre-sizes scratch at
// 100 rows, not 100k), its own deadline (WithRequestTimeout or
// Request.Context) and its own error slot — one cancelled or failed
// request never poisons the others. Results are byte-identical to
// running each request alone, at any worker count. Scratch arenas are
// still shared across the batch (that sharing is the point of
// batching: buffers grown by one request are reused by the next).
func (s *Solver) SolveBatch(reqs []Request, opts ...BatchOption) []BatchResult {
	var cfg batchConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	out := make([]BatchResult, len(reqs))
	if err := s.begin(); err != nil {
		// A closed solver still owes one result per request.
		for i := range out {
			out[i] = BatchResult{Index: i, Err: err}
		}
		return out
	}
	defer s.end()
	ran := make([]bool, len(reqs))
	err := s.ctx.ForEachBlock(len(reqs),
		func(i int) int {
			// A malformed request still sizes as 0 so it reaches
			// runRequest's nil-guard as a per-request error instead of
			// panicking the whole batch here.
			if reqs[i].Table == nil {
				return 0
			}
			return reqs[i].Table.Len()
		},
		func(wc *solve.Ctx, i int) error {
			out[i] = s.runRequest(wc, i, reqs[i], cfg)
			ran[i] = true
			// Per-request isolation: the request's error lives in its
			// BatchResult, never in the batch-level join.
			return nil
		})
	// The batch-level fan-out only fails when the solver's own base
	// context is done; requests skipped by that drain still owe the
	// caller an answer.
	if err != nil {
		for i := range out {
			if !ran[i] {
				out[i] = BatchResult{Index: i, Err: err}
			}
		}
	}
	return out
}

// validate checks that the request carries the inputs its algorithm
// consumes, so a malformed request fails with a descriptive per-request
// error instead of a recovered panic.
func (r Request) validate(i int) error {
	if r.Table == nil {
		return fmt.Errorf("fdrepair: batch request %d: nil Table", i)
	}
	switch r.Algorithm {
	case AlgoCFDSRepair:
		if len(r.CFDs) == 0 {
			return fmt.Errorf("fdrepair: batch request %d: no CFDs", i)
		}
	case AlgoDenialSRepair:
		if len(r.Denial) == 0 && r.FDs == nil {
			return fmt.Errorf("fdrepair: batch request %d: no denial constraints and nil FDs", i)
		}
	case AlgoCQA:
		if r.FDs == nil || r.Query == nil {
			return fmt.Errorf("fdrepair: batch request %d: nil FDs or Query", i)
		}
	default:
		// The plain-FD algorithms and AlgoPriorityRepair (whose nil
		// Priority means no preferences) all need an FD set.
		if r.FDs == nil {
			return fmt.Errorf("fdrepair: batch request %d: nil FDs or Table", i)
		}
	}
	return nil
}

// runRequest executes one request under a fresh per-request solve
// scope on wc's worker binding. A panic escaping the request body —
// whether from a poisoned table, an algorithm bug, or an injected
// failpoint — is recovered here (the scheduler additionally recovers
// panics inside enqueued block tasks) and becomes this request's
// *PanicError; it never unwinds into the scheduler, sibling requests,
// or the daemon serving the batch.
func (s *Solver) runRequest(wc *solve.Ctx, i int, r Request, cfg batchConfig) (res BatchResult) {
	res = BatchResult{Index: i}
	if err := r.validate(i); err != nil {
		res.Err = err
		return res
	}
	rctx := r.Context
	if cfg.timeout > 0 {
		base := rctx
		if base == nil {
			// Same fallback Scoped applies: a request without its own
			// context derives its deadline from the solver's base.
			base = wc.Base()
		}
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		// context.WithTimeout keeps the parent's deadline when it is
		// earlier, so Request.Context and WithRequestTimeout compose to
		// the earliest deadline in either order.
		rctx, cancel = context.WithTimeout(base, cfg.timeout)
		defer cancel()
	}
	var st *solve.Stats
	if s.stats != nil {
		st = new(solve.Stats)
	}
	defer func() {
		if rec := recover(); rec != nil {
			res.Err = solve.NewPanicError(rec)
			if st != nil {
				st.Panics.Add(1)
			}
		}
		if st != nil {
			res.Stats = st.Snapshot()
			s.stats.Merge(res.Stats)
		}
	}()
	s.execute(wc.Scoped(rctx, st), rctx, st, i, r, cfg, &res)
	return res
}

// execute dispatches one request's algorithm under its scoped Ctx.
// rctx is the request's effective cancellation source (nil = the
// solver's base), needed to derive the exact-solve sub-budget for
// WithApproxFallback.
func (s *Solver) execute(c *solve.Ctx, rctx context.Context, st *solve.Stats, i int, r Request, cfg batchConfig, res *BatchResult) {
	switch r.Algorithm {
	case AlgoOptimalSRepair:
		var rep *table.Table
		rep, res.Err = srepair.OptSRepairCtx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
		}
	case AlgoExactSRepair:
		if cfg.approxAfter > 0 {
			s.exactWithFallback(c, rctx, st, r, cfg, res)
			return
		}
		var rep *table.Table
		rep, res.Err = srepair.ExactCtx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
		}
	case AlgoApproxSRepair:
		var rep *table.Table
		rep, res.Err = srepair.Approx2Ctx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
		}
	case AlgoOptimalURepair:
		var ur URepairResult
		ur, res.Err = urepair.RepairCtx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.URepair = &ur
			res.Table, res.Cost = ur.Update, ur.Cost
		}
	case AlgoMostProbable:
		var rep *table.Table
		rep, res.Err = mpd.SolveCtx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost = rep, mpd.Probability(r.Table, rep)
		}
	case AlgoCFDSRepair:
		var cr cfd.Result
		cr, res.Err = cfd.Approx2SRepairCtx(c, r.CFDs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost, res.CFD = cr.Repair, cr.TotalCost, &cr
		}
	case AlgoDenialSRepair:
		cs := r.Denial
		if len(cs) == 0 {
			cs, res.Err = denial.FromFDSet(r.FDs)
			if res.Err != nil {
				return
			}
		}
		var rep *table.Table
		rep, res.Err = denial.Approx2SRepairCtx(c, cs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
		}
	case AlgoCQA:
		res.CQA, res.Err = cqa.ConsistentAnswersCtx(c, r.FDs, r.Table, r.Query)
	case AlgoPriorityRepair:
		rel := r.Priority
		if rel == nil {
			rel = priority.NewRelation()
		}
		var rep *table.Table
		rep, res.Err = priority.CRepairCtx(c, r.FDs, r.Table, rel)
		if res.Err == nil {
			res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
		}
	default:
		res.Err = fmt.Errorf("fdrepair: batch request %d: unknown algorithm %v", i, r.Algorithm)
	}
}

// exactWithFallback runs an AlgoExactSRepair request under the
// WithApproxFallback budget: the exact solve gets its own deadline of
// cfg.approxAfter (clamped by the request's deadline, which stays in
// force); if the budget — and only the budget — expires, the request
// degrades to the 2-approximation under the request's remaining
// deadline instead of failing.
func (s *Solver) exactWithFallback(c *solve.Ctx, rctx context.Context, st *solve.Stats, r Request, cfg batchConfig, res *BatchResult) {
	base := rctx
	if base == nil {
		base = c.Base()
	}
	if base == nil {
		base = context.Background()
	}
	sub, cancel := context.WithTimeout(base, cfg.approxAfter)
	rep, err := srepair.ExactCtx(c.Scoped(sub, st), r.FDs, r.Table)
	cancel()
	if err == nil {
		res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
		return
	}
	if !errors.Is(err, context.DeadlineExceeded) || (rctx != nil && rctx.Err() != nil) {
		// A genuine failure, or the request's own deadline (not the
		// exact budget) is what expired: no point degrading.
		res.Err = err
		return
	}
	rep, err = srepair.Approx2Ctx(c, r.FDs, r.Table)
	if err != nil {
		res.Err = err
		return
	}
	res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
	res.Degraded = true
}

// Stream is the queue form of SolveBatch for serving request traffic:
// Submit enqueues repair requests as they arrive, Results delivers
// each BatchResult as its request completes (completion order, with
// Index recording submission order). In-flight work is bounded by the
// solver's worker budget; beyond it, Submit's goroutines queue behind
// a semaphore, and the inner recursions of running requests share the
// solver's one work-stealing scheduler and arenas exactly like
// SolveBatch. Construct with Solver.NewStream.
//
// The consumer must drain Results; once the channel's buffer (one slot
// per worker) is full, completed requests block their slot until read.
// Submit and Close may be called from any goroutine, concurrently:
// Submit after (or racing) Close fails with ErrStreamClosed instead of
// panicking, so producers never need to coordinate with shutdown.
type Stream struct {
	sv      *Solver
	cfg     batchConfig
	results chan BatchResult
	sem     chan struct{}

	mu     sync.Mutex
	next   int
	closed bool
	wg     sync.WaitGroup
}

// NewStream opens a streaming submission queue over this Solver's
// scheduler and arenas. The same per-request options as SolveBatch
// apply (WithRequestTimeout). Close the stream after the last Submit;
// Results closes once every submitted request has been delivered.
func (s *Solver) NewStream(opts ...BatchOption) *Stream {
	var cfg batchConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	workers := s.Parallelism()
	return &Stream{
		sv:      s,
		cfg:     cfg,
		results: make(chan BatchResult, workers),
		sem:     make(chan struct{}, workers),
	}
}

// Submit enqueues one request and returns its index (submission
// order), which its BatchResult will carry. Submit blocks only while
// the stream's in-flight budget (= the solver's worker budget) is
// exhausted — natural backpressure for a producer outrunning the
// engine; it never waits for its own request to complete.
//
// Submit fails with ErrStreamClosed after Close (it used to panic;
// returning the sentinel lets producers race shutdown safely) and with
// ErrSolverClosed once the stream's Solver has been Closed. A failed
// Submit consumes no index.
func (st *Stream) Submit(r Request) (int, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return 0, ErrStreamClosed
	}
	// Each streamed request counts as one in-flight solve on the
	// Solver, so Solver.Close waits for it like any other.
	if err := st.sv.begin(); err != nil {
		st.mu.Unlock()
		return 0, err
	}
	i := st.next
	st.next++
	st.wg.Add(1)
	st.mu.Unlock()
	st.sem <- struct{}{} // bound in-flight requests
	go func() {
		defer st.wg.Done()
		defer st.sv.end()
		res := st.sv.runRequest(st.sv.ctx, i, r, st.cfg)
		// Deliver before releasing the in-flight slot: a completed
		// request keeps its slot until the consumer reads it (past the
		// channel buffer), so a slow consumer throttles Submit instead
		// of accumulating unread results without bound.
		st.results <- res
		<-st.sem
	}()
	return i, nil
}

// Results returns the delivery channel. It yields one BatchResult per
// submitted request in completion order and closes after Close once
// every in-flight request has been delivered.
func (st *Stream) Results() <-chan BatchResult { return st.results }

// Close marks the stream complete: no further Submits are accepted,
// and Results closes once the in-flight requests drain. Close returns
// immediately; it is safe to call once from any goroutine.
func (st *Stream) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	st.mu.Unlock()
	go func() {
		st.wg.Wait()
		close(st.results)
	}()
}
