package fdrepair

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/mpd"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
)

// Algorithm selects the repair computation a batch Request runs.
type Algorithm int

const (
	// AlgoOptimalSRepair is Solver.OptimalSRepair (Algorithm 1; fails
	// with srepair.ErrNoSimplification on the hard side of the
	// dichotomy). The zero value, so the default for a Request.
	AlgoOptimalSRepair Algorithm = iota
	// AlgoExactSRepair is Solver.ExactSRepair (exponential baseline).
	AlgoExactSRepair
	// AlgoApproxSRepair is Solver.ApproxSRepair (2-approximation).
	AlgoApproxSRepair
	// AlgoOptimalURepair is Solver.OptimalURepair; the update and its
	// guarantees are returned in BatchResult.URepair.
	AlgoOptimalURepair
	// AlgoMostProbable is Solver.MostProbableDatabase; Cost carries the
	// probability.
	AlgoMostProbable
)

// String names the algorithm for reports and CLI summaries.
func (a Algorithm) String() string {
	switch a {
	case AlgoOptimalSRepair:
		return "optimal-srepair"
	case AlgoExactSRepair:
		return "exact-srepair"
	case AlgoApproxSRepair:
		return "approx-srepair"
	case AlgoOptimalURepair:
		return "optimal-urepair"
	case AlgoMostProbable:
		return "most-probable"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Request is one unit of batch/stream work: a table, the FD set to
// repair it under, the algorithm to run, and an optional per-request
// cancellation context. A Request with a nil Context inherits the
// solver's base context (WithContext); a non-nil Context replaces it
// for this request, and WithRequestTimeout derives a deadline from
// whichever applies.
type Request struct {
	FDs       *FDSet
	Table     *Table
	Algorithm Algorithm
	Context   context.Context
}

// BatchResult is the outcome of one Request. Exactly one of Table (for
// the S-repair and MPD algorithms) or URepair (for AlgoOptimalURepair)
// is set on success; Err carries the request's own failure — a
// cancelled or failed request never poisons its batch siblings.
type BatchResult struct {
	// Index is the request's position in the SolveBatch input slice (or
	// its Stream submission order), so streamed results can be
	// correlated out of completion order.
	Index int
	// Table is the repair: a consistent subset for the S-repair
	// algorithms, the most probable database for AlgoMostProbable.
	Table *Table
	// Cost is dist_sub for the S-repair algorithms and the subset's
	// probability for AlgoMostProbable; for AlgoOptimalURepair see
	// URepair.Cost.
	Cost float64
	// URepair is the full update-repair outcome for AlgoOptimalURepair.
	URepair *URepairResult
	// Err is the request's error (context.DeadlineExceeded on a missed
	// per-request deadline, srepair.ErrNoSimplification on a hard FD
	// set under AlgoOptimalSRepair, ...).
	Err error
	// Stats is this request's own counter slice (zero unless the Solver
	// was built WithStats). The solver's aggregate Stats still
	// accumulates every request.
	Stats SolveStats
}

// batchConfig collects per-batch option values.
type batchConfig struct {
	timeout time.Duration
}

// BatchOption configures SolveBatch and NewStream.
type BatchOption func(*batchConfig)

// WithRequestTimeout gives every request in the batch (or stream) its
// own deadline of d, measured from the moment the request starts
// running: one slow or huge table times out alone while the rest of
// the batch completes. The deadline is derived from the request's
// Context when set, else from the solver's base context, so an
// explicit request deadline composes with outer cancellation.
func WithRequestTimeout(d time.Duration) BatchOption {
	return func(c *batchConfig) { c.timeout = d }
}

// SolveBatch runs many repair requests on this Solver and returns one
// BatchResult per request, index-aligned with reqs (and with Index set,
// so callers may also sort or merge streamed copies). The requests are
// admitted as tasks on the solver's one work-stealing scheduler —
// alongside the block-level tasks their own recursions spawn — so a
// mixed-size batch keeps every worker busy without over-subscribing
// the budget; on a serial Solver the batch runs sequentially.
//
// Each request executes under its own solve scope: its own size hints
// (a 100-row request next to a 100k-row request pre-sizes scratch at
// 100 rows, not 100k), its own deadline (WithRequestTimeout or
// Request.Context) and its own error slot — one cancelled or failed
// request never poisons the others. Results are byte-identical to
// running each request alone, at any worker count. Scratch arenas are
// still shared across the batch (that sharing is the point of
// batching: buffers grown by one request are reused by the next).
func (s *Solver) SolveBatch(reqs []Request, opts ...BatchOption) []BatchResult {
	var cfg batchConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	out := make([]BatchResult, len(reqs))
	ran := make([]bool, len(reqs))
	err := s.ctx.ForEachBlock(len(reqs),
		func(i int) int {
			// A malformed request still sizes as 0 so it reaches
			// runRequest's nil-guard as a per-request error instead of
			// panicking the whole batch here.
			if reqs[i].Table == nil {
				return 0
			}
			return reqs[i].Table.Len()
		},
		func(wc *solve.Ctx, i int) error {
			out[i] = s.runRequest(wc, i, reqs[i], cfg)
			ran[i] = true
			// Per-request isolation: the request's error lives in its
			// BatchResult, never in the batch-level join.
			return nil
		})
	// The batch-level fan-out only fails when the solver's own base
	// context is done; requests skipped by that drain still owe the
	// caller an answer.
	if err != nil {
		for i := range out {
			if !ran[i] {
				out[i] = BatchResult{Index: i, Err: err}
			}
		}
	}
	return out
}

// runRequest executes one request under a fresh per-request solve
// scope on wc's worker binding.
func (s *Solver) runRequest(wc *solve.Ctx, i int, r Request, cfg batchConfig) BatchResult {
	res := BatchResult{Index: i}
	if r.FDs == nil || r.Table == nil {
		res.Err = fmt.Errorf("fdrepair: batch request %d: nil FDs or Table", i)
		return res
	}
	rctx := r.Context
	if cfg.timeout > 0 {
		base := rctx
		if base == nil {
			// Same fallback Scoped applies: a request without its own
			// context derives its deadline from the solver's base.
			base = wc.Base()
		}
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(base, cfg.timeout)
		defer cancel()
	}
	var st *solve.Stats
	if s.stats != nil {
		st = new(solve.Stats)
	}
	c := wc.Scoped(rctx, st)
	switch r.Algorithm {
	case AlgoOptimalSRepair:
		var rep *table.Table
		rep, res.Err = srepair.OptSRepairCtx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
		}
	case AlgoExactSRepair:
		var rep *table.Table
		rep, res.Err = srepair.ExactCtx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
		}
	case AlgoApproxSRepair:
		var rep *table.Table
		rep, res.Err = srepair.Approx2Ctx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost = rep, table.DistSub(rep, r.Table)
		}
	case AlgoOptimalURepair:
		var ur URepairResult
		ur, res.Err = urepair.RepairCtx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.URepair = &ur
			res.Table, res.Cost = ur.Update, ur.Cost
		}
	case AlgoMostProbable:
		var rep *table.Table
		rep, res.Err = mpd.SolveCtx(c, r.FDs, r.Table)
		if res.Err == nil {
			res.Table, res.Cost = rep, mpd.Probability(r.Table, rep)
		}
	default:
		res.Err = fmt.Errorf("fdrepair: batch request %d: unknown algorithm %v", i, r.Algorithm)
	}
	if st != nil {
		res.Stats = st.Snapshot()
		s.stats.Merge(res.Stats)
	}
	return res
}

// Stream is the queue form of SolveBatch for serving request traffic:
// Submit enqueues repair requests as they arrive, Results delivers
// each BatchResult as its request completes (completion order, with
// Index recording submission order). In-flight work is bounded by the
// solver's worker budget; beyond it, Submit's goroutines queue behind
// a semaphore, and the inner recursions of running requests share the
// solver's one work-stealing scheduler and arenas exactly like
// SolveBatch. Construct with Solver.NewStream.
//
// The consumer must drain Results; once the channel's buffer (one slot
// per worker) is full, completed requests block their slot until read.
// Submit and Close may be called from any goroutine, but Submit after
// Close panics (like sending on a closed channel).
type Stream struct {
	sv      *Solver
	cfg     batchConfig
	results chan BatchResult
	sem     chan struct{}

	mu     sync.Mutex
	next   int
	closed bool
	wg     sync.WaitGroup
}

// NewStream opens a streaming submission queue over this Solver's
// scheduler and arenas. The same per-request options as SolveBatch
// apply (WithRequestTimeout). Close the stream after the last Submit;
// Results closes once every submitted request has been delivered.
func (s *Solver) NewStream(opts ...BatchOption) *Stream {
	var cfg batchConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	workers := s.Parallelism()
	return &Stream{
		sv:      s,
		cfg:     cfg,
		results: make(chan BatchResult, workers),
		sem:     make(chan struct{}, workers),
	}
}

// Submit enqueues one request and returns its index (submission
// order), which its BatchResult will carry. Submit blocks only while
// the stream's in-flight budget (= the solver's worker budget) is
// exhausted — natural backpressure for a producer outrunning the
// engine; it never waits for its own request to complete.
func (st *Stream) Submit(r Request) int {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		panic("fdrepair: Submit on a closed Stream")
	}
	i := st.next
	st.next++
	st.wg.Add(1)
	st.mu.Unlock()
	st.sem <- struct{}{} // bound in-flight requests
	go func() {
		defer st.wg.Done()
		res := st.sv.runRequest(st.sv.ctx, i, r, st.cfg)
		// Deliver before releasing the in-flight slot: a completed
		// request keeps its slot until the consumer reads it (past the
		// channel buffer), so a slow consumer throttles Submit instead
		// of accumulating unread results without bound.
		st.results <- res
		<-st.sem
	}()
	return i
}

// Results returns the delivery channel. It yields one BatchResult per
// submitted request in completion order and closes after Close once
// every in-flight request has been delivered.
func (st *Stream) Results() <-chan BatchResult { return st.results }

// Close marks the stream complete: no further Submits are accepted,
// and Results closes once the in-flight requests drain. Close returns
// immediately; it is safe to call once from any goroutine.
func (st *Stream) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	st.mu.Unlock()
	go func() {
		st.wg.Wait()
		close(st.results)
	}()
}
