// Package fdrepair is the public API of the library: computing optimal
// and approximate repairs of an inconsistent single-relation database
// under functional dependencies, after Livshits, Kimelfeld and Roy,
// "Computing Optimal Repairs for Functional Dependencies" (PODS 2018).
//
// The package exposes the underlying machinery through type aliases and
// a small set of high-level entry points:
//
//	sc := fdrepair.MustSchema("Office", "facility", "room", "floor", "city")
//	ds := fdrepair.MustFDs(sc, "facility -> city", "facility room -> floor")
//	t := fdrepair.NewTable(sc)
//	t.MustInsert(1, fdrepair.Tuple{"HQ", "322", "3", "Paris"}, 2)
//	...
//	info := fdrepair.Classify(ds)            // dichotomy (Theorem 3.4)
//	s, cost, _ := fdrepair.OptimalSRepair(ds, t)  // Algorithm 1
//	u, _ := fdrepair.OptimalURepair(ds, t)        // Section 4 planner
//	m, _ := fdrepair.MostProbableDatabase(ds, pt) // Theorem 3.10
//
// Deletion repairs: OptimalSRepair runs the paper's polynomial
// algorithm OptSRepair and succeeds exactly when the FD set is on the
// tractable side of the dichotomy; ExactSRepair is an exponential
// baseline for any FD set; ApproxSRepair is the polynomial
// 2-approximation of Proposition 3.3.
//
// Update repairs: OptimalURepair composes the paper's tractable cases
// (consensus elimination, attribute-disjoint decomposition, common-lhs
// sets, chains, key swaps) and falls back to the combined approximation
// of Section 4.4, reporting exactness and the guaranteed ratio.
//
// # Constraint extensions on the Solver core
//
// The Section-5 extension classes — conditional FDs (ConditionalFD,
// ExactCFDSRepair/ApproxCFDSRepair), binary denial constraints
// (DenialConstraint, ExactDenialSRepair/ApproxDenialSRepair),
// consistent query answering (CQAQuery, ConsistentAnswers) and
// prioritized repairing (PriorityRelation, PrioritizedRepair) — exist
// in two grades. The package-level functions are the seed
// implementations: straightforward string-tuple code, quadratic pair
// scans, clone-and-recheck admission, whole-table repair enumeration.
// They remain in the tree as differential oracles.
//
// The same names as methods on a Solver run on the encoded core:
// conflicts are found on the table's cached int32 projection codes
// (values parse once per cell, not once per compared pair), independent
// units — CFD pattern groups, denial join groups, conflict-graph
// components — fan out across the solver's workers, and every call
// honors the solver's cancellation, deadline, arenas and stats (the
// cfd_patterns, denial_predicates, cqa_certain and priority_levels
// counters). Results are byte-identical to the seed functions; the
// differential suites pin this at workers 1, 2, 4 and 8.
//
// Two of the classes change asymptotic reach rather than just constant
// factors. Solver.ConsistentAnswers factorizes the repair count over
// conflict components, so the 64-tuple enumeration bound applies per
// component instead of per table — a table of any size answers exactly
// as long as each individual component stays within the bound.
// Solver.PrioritizedRepair admits rows with per-FD code maps local to
// each conflict component instead of cloning the repair and re-checking
// consistency per insertion.
//
// The classes are also first-class batch citizens: Request.CFDs,
// Request.Denial, Request.Query and Request.Priority select them in
// SolveBatch (Algorithm AlgoCFDSRepair, AlgoDenialSRepair, AlgoCQA,
// AlgoPriorityRepair), the fdrepair CLI accepts -mode cfd|denial|cqa|
// priority, and fdrepaird serves them as algo=cfd|denial|cqa|priority.
//
// # Out-of-core ingestion and memory model
//
// Tables enter the library in one of two memory regimes. Programmatic
// construction (NewTable + Insert/AppendRows) holds whatever strings
// the caller passes. CSV ingestion — ReadCSV, or any path that loads
// files or request bodies — streams through a chunked builder
// (table.IngestCSV) that never materializes the raw string form of
// the table: each cell is parsed from a reusable byte buffer, looked
// up in the per-attribute dictionary without allocating, and stored
// as an int32 code in a fixed-size column chunk. Only the first
// occurrence of a distinct value allocates a string; every later
// occurrence shares it. Transient memory is O(chunk + dictionary),
// so peak heap while loading a table tracks the encoded size (int32
// columns plus one string per distinct value), not the CSV size —
// the property that makes 10M-row inputs loadable under a GOMEMLIMIT
// a tuple-at-a-time reader cannot satisfy.
//
// Ingestion also builds per-attribute (and small-attribute-set)
// cardinality sketches: exact sets below a few thousand distinct
// values, an HLL-style register estimate above. Solves on an ingested
// table feed these to the engine's arena preheating through
// solve.Hints, replacing the dictionary-size upper bound with real
// distinct counts, so scratch buffers for group-by and matching are
// sized right the first time. Tables built programmatically carry no
// sketches and keep the estimate-based behavior; mutating an ingested
// table drops its sketches along with its cached encoding.
//
// # Operating fdrepaird
//
// Command fdrepaird (cmd/fdrepaird) serves this package over HTTP: one
// shared Solver, one scheduler, every request a single-element
// SolveBatch with its own scope, deadline and failure domain.
//
// Endpoints:
//
//	GET  /healthz   liveness: 200 while the process serves
//	GET  /readyz    readiness: 200 while admitting, 503 once draining
//	GET  /metrics   Prometheus text: per-request outcome and
//	                per-algorithm counters (fdrepaird_requests_total
//	                {outcome=...} and {algo=...}) and the solver's
//	                SolveStats (fdrepaird_solve_*_total)
//	POST /solve     body: the table as CSV (header row names the
//	                attributes; optional id and w columns); query:
//	                repeatable fd=<spec>, algo=auto|optimal|exact|
//	                approx|urepair|mpd|cfd|denial|cqa|priority,
//	                timeout=<duration>, plus the per-class parameters
//	                cfd=, dc=, project=/where=, prefer=; response: the
//	                repair as CSV with X-Repair-* headers (algo=cqa:
//	                the certain answers with X-Cqa-* headers)
//
// Admission and quotas. A request passes three gates in order: the
// drain flag (503 + Retry-After once shutdown has begun), the
// per-tenant token bucket (-tenant-rate/-tenant-burst, keyed by the
// X-Tenant header; 429 + Retry-After when dry), and the bounded
// request queue (-queue; 429 when full). Shedding is always
// immediate — an overloaded daemon refuses fast rather than queueing
// unboundedly.
//
// Failure isolation. A panic inside one request's solve is recovered
// at the block boundary, reported as that request's 500 with the stack
// in the daemon log, and counted in fdrepaird_requests_total and
// fdrepaird_solve_panics_total; concurrent requests on the same
// scheduler are unaffected. A missed per-request deadline is a 504;
// with -approx-fallback set, an exact solve that exhausts its budget
// degrades to the 2-approximation instead (X-Repair-Degraded: true),
// as does algo=auto on an FD set that is hard for optimal S-repair.
//
// Drain semantics. On SIGTERM or SIGINT the daemon flips /readyz to
// 503, sheds new solves, lets in-flight requests finish within the
// -drain budget (http.Server.Shutdown followed by Solver.Close), then
// exits 0 on a clean quiesce and 1 when the budget expires with work
// still running.
//
// # Invariants and how they are enforced
//
// The engine's correctness under concurrency rests on a handful of
// repo-wide conventions that ordinary tests exercise but cannot pin
// mechanically. Command fdlint (cmd/fdlint, analyzers in internal/lint)
// checks them on every build; CI runs `fdlint ./...` beside gofmt, vet
// and staticcheck. One analyzer per invariant:
//
//   - fdlint/scopeentry — one solve = one scope. Every exported entry
//     point that takes a *solve.Ctx must call BeginSolve (directly or
//     via a same-package delegate) before doing work, so size hints and
//     arenas from the caller's previous solve cannot leak into this
//     one. Guards against the sticky-hints regression the per-solve
//     scopes PR fixed: a second solve on a reused context inheriting
//     the first solve's (larger) buffer estimates.
//
//   - fdlint/arenapair — every arena acquisition (solve.Ctx's Int32s,
//     Float64s, Int32Slices, GetScratch, ...) must be released on every
//     path to return, or explicitly handed off. A leaked buffer is not
//     a memory error — the arena just allocates a fresh one next time —
//     but it silently degrades the arena hit rate the perf snapshots
//     gate on.
//
//   - fdlint/statsatomic — solve.Stats fields are atomic counters
//     updated concurrently by worker goroutines; outside their owning
//     package they may only be read via Load/Snapshot, never written,
//     copied or dereferenced raw. Guards the concurrent stats sink the
//     scheduler and the daemon's /metrics endpoint both feed from.
//
//   - fdlint/determinism — solve-path code may not read wall-clock
//     time, use the package-global math/rand source, or feed map
//     iteration order into a slice without sorting. Repairs must be
//     byte-identical at workers ∈ {1, 2, 4, 8}; the differential suites
//     test that property, this analyzer pins the code patterns that
//     break it.
//
//   - fdlint/cancelcheck — long-running solve loops must poll Ctx.Err
//     on the every-32-phases convention the Jaccard-style matcher
//     established, and loops that dispatch ctx-threaded work must poll
//     between dispatches. Keeps cancellation latency bounded so
//     deadlines and drains observe it promptly.
//
// Findings are suppressed only with a reasoned directive on the
// offending statement (the reason is mandatory; a bare directive is
// itself a finding):
//
//	//lint:ignore fdlint/<analyzer> <why this code is exempt>
//
// See cmd/fdlint/README.md for the suppression policy.
//
// Fault injection. The FDREPAIR_FAILPOINTS environment variable arms
// the failpoints of internal/solve/failpoint inside the solve engine,
// e.g.
//
//	FDREPAIR_FAILPOINTS='panic-in-block=after:100,count:1;slow-block=sleep:2ms,every:8'
//
// Available points: panic-in-block, slow-block, alloc-spike,
// cancel-mid-recursion, each with after/every/count/sleep/bytes knobs.
// Disarmed points cost one atomic load per block dispatch; production
// binaries simply leave the variable unset.
package fdrepair
