package fdrepair

import (
	"math/rand"
	"testing"

	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/workload"
)

// TestFlightsEndToEnd runs the whole pipeline on the embedded dirty
// flight-status dataset: classification, both repair kinds, counting,
// MPD, and consistent query answering — the way a downstream user would
// chain the API.
func TestFlightsEndToEnd(t *testing.T) {
	sc, ds, tab := workload.Flights()

	// The FD set has common lhs {flight, date}: tractable on both sides.
	info := Classify(ds)
	if !info.SRepairPolyTime || !info.URepairExact {
		t.Fatalf("flights FDs should be fully tractable: %+v", info)
	}

	// S-repair: Algorithm 1 equals the exponential baseline.
	s, sCost, err := OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Satisfies(ds) {
		t.Fatal("S-repair inconsistent")
	}
	exact, exactCost, err := ExactSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(sCost, exactCost) {
		t.Fatalf("OptSRepair cost %v != exact %v", sCost, exactCost)
	}
	_ = exact

	// UA100 on 2026-06-01: the trusted G12/09:15 report (weight 3+1)
	// must survive; the two conflicting single-source reports go.
	if !s.Has(1) || !s.Has(2) || s.Has(3) || s.Has(4) {
		t.Fatalf("UA100 resolution wrong: kept %v", s.IDs())
	}
	// The duplicate WN400 rows both survive (duplicates never conflict).
	if !s.Has(11) || !s.Has(12) {
		t.Fatal("duplicate rows should survive")
	}

	// U-repair: exact (common lhs), same cost as the S-repair
	// (Corollary 4.6 with mlc = 1).
	u, err := OptimalURepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Exact || !table.WeightEq(u.Cost, sCost) {
		t.Fatalf("U-repair cost %v (exact=%v), want %v", u.Cost, u.Exact, sCost)
	}

	// Counting: the FD set is not literally a chain but the repairs are
	// still enumerable; count must match the enumeration.
	c, err := CountSRepairs(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	reps, total, err := SubsetRepairs(ds, tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Int64() != int64(total) || len(reps) != total {
		t.Fatalf("count %v vs enumeration %d", c, total)
	}

	// CQA: the gate of DL200 on 2026-06-01 is uncertain (B03 at 11:00
	// vs 11:10 are departure conflicts; gate B03 is shared so gate IS
	// certain). Query the departure instead: it must be uncertain.
	fIdx, _ := sc.AttrIndex("flight")
	dIdx, _ := sc.AttrIndex("date")
	q, err := NewCQAQuery(sc, []string{"departure"},
		CQAFilter{Attr: fIdx, Value: "DL200"},
		CQAFilter{Attr: dIdx, Value: "2026-06-01"})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ConsistentAnswers(ds, tab, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Certain) != 0 || len(ans.Possible) != 2 {
		t.Fatalf("DL200 departure: certain %v possible %v", ans.Certain, ans.Possible)
	}

	// Gate query: B03 is reported by both sources, so it is certain.
	qg, err := NewCQAQuery(sc, []string{"gate"},
		CQAFilter{Attr: fIdx, Value: "DL200"},
		CQAFilter{Attr: dIdx, Value: "2026-06-01"})
	if err != nil {
		t.Fatal(err)
	}
	ansG, err := ConsistentAnswers(ds, tab, qg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ansG.Certain) != 1 || ansG.Certain[0][0] != "B03" {
		t.Fatalf("DL200 gate certain = %v, want [B03]", ansG.Certain)
	}
}

// TestSoakCrossValidation is a randomized end-to-end consistency sweep:
// for a spread of FD sets and random tables, every algorithm respects
// its contract against the oracles. It complements the per-package
// tests with fresh seeds at the integration level.
func TestSoakCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	rng := rand.New(rand.NewSource(20260612))
	sc := MustSchema("R", "A", "B", "C")
	sets := []*FDSet{
		MustFDs(sc, "A -> B"),
		MustFDs(sc, "A -> B C"),
		MustFDs(sc, "A -> B", "A B -> C"),
		MustFDs(sc, "A -> B", "B -> A"),
		MustFDs(sc, "A -> B", "B -> A", "B -> C"),
		MustFDs(sc, "A -> B", "B -> C"),
		MustFDs(sc, "A -> C", "B -> C"),
		MustFDs(sc, "-> A", "B -> C"),
	}
	for round := 0; round < 6; round++ {
		for _, ds := range sets {
			tab := workload.RandomWeightedTable(sc, 4+rng.Intn(5), 2, 3, rng)
			info := Classify(ds)

			// S-repair contract.
			exact, exactCost, err := ExactSRepair(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !exact.Satisfies(ds) {
				t.Fatal("exact S-repair inconsistent")
			}
			if info.SRepairPolyTime {
				s, cost, err := OptimalSRepair(ds, tab)
				if err != nil {
					t.Fatalf("%v: OptSRepair failed on tractable set: %v", ds, err)
				}
				if !s.Satisfies(ds) || !table.WeightEq(cost, exactCost) {
					t.Fatalf("%v: OptSRepair cost %v vs exact %v", ds, cost, exactCost)
				}
			} else if _, _, err := OptimalSRepair(ds, tab); err == nil {
				t.Fatalf("%v: OptSRepair should fail on hard set", ds)
			}
			ap, apCost, err := ApproxSRepair(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !ap.Satisfies(ds) || apCost > 2*exactCost+1e-9 {
				t.Fatalf("%v: approx violates guarantee (%v vs %v)", ds, apCost, exactCost)
			}

			// U-repair contract.
			res, err := OptimalURepair(ds, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Update.Satisfies(ds) {
				t.Fatal("U-repair inconsistent")
			}
			if res.Exact != info.URepairExact {
				t.Fatalf("%v: planner exactness %v disagrees with Classify %v", ds, res.Exact, info.URepairExact)
			}
			if tab.Len() <= 4 {
				_, opt, err := ExactURepair(ds, tab)
				if err != nil {
					t.Fatal(err)
				}
				if res.Exact && !table.WeightEq(res.Cost, opt) {
					t.Fatalf("%v: exact planner cost %v vs oracle %v", ds, res.Cost, opt)
				}
				if res.Cost > res.RatioBound*opt+1e-9 {
					t.Fatalf("%v: cost %v exceeds ratio bound", ds, res.Cost)
				}
			}

			// MPD on a probabilistic version.
			prob := NewTable(sc)
			for _, r := range tab.Rows() {
				prob.MustInsert(r.ID, r.Tuple, 0.5+0.5*rng.Float64())
			}
			world, p, err := MostProbableDatabase(ds, prob)
			if err != nil {
				t.Fatal(err)
			}
			if !world.Satisfies(ds) || p < 0 || p > 1 {
				t.Fatalf("%v: bad MPD result (p=%v)", ds, p)
			}

			// Trace sanity: OSRSucceeds agrees with Classify.
			if _, ok := srepair.Trace(ds); ok != info.SRepairPolyTime {
				t.Fatalf("%v: trace and Classify disagree", ds)
			}
		}
	}
}
