package fdrepair

import (
	"repro/internal/cqa"
)

// CQAFilter is an equality selection for consistent query answering.
type CQAFilter = cqa.Filter

// CQAQuery is a selection–projection query evaluated under repair
// semantics.
type CQAQuery = cqa.Query

// CQAAnswers holds the certain and possible answers of a query.
type CQAAnswers = cqa.Answers

// NewCQAQuery builds a selection–projection query: project names the
// output attributes; filters are attribute = value selections.
func NewCQAQuery(sc *Schema, project []string, filters ...CQAFilter) (*CQAQuery, error) {
	set, err := sc.Set(project...)
	if err != nil {
		return nil, err
	}
	return cqa.NewQuery(sc, set, filters...)
}

// ConsistentAnswers computes the certain answers (true in every subset
// repair) and possible answers (true in some subset repair) of the
// query — the consistent-query-answering semantics of Arenas et al.
// that motivates the paper. Enumeration-bounded; small instances only.
func ConsistentAnswers(ds *FDSet, t *Table, q *CQAQuery) (*CQAAnswers, error) {
	return cqa.ConsistentAnswers(ds, t, q)
}

// ConsistentAnswers is the Solver-scoped ConsistentAnswers on the
// encoded engine: repairs are factorized over the conflict graph's
// components (each enumerating as one scheduler task), so the
// enumeration bound applies per component instead of per table —
// tables far beyond the seed path's 64-tuple limit answer exactly as
// long as every individual conflict component stays within it.
func (s *Solver) ConsistentAnswers(ds *FDSet, t *Table, q *CQAQuery) (*CQAAnswers, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	return cqa.ConsistentAnswersCtx(s.ctx, ds, t, q)
}
