package fdrepair

import (
	"repro/internal/priority"
)

// PriorityRelation is an acyclic preference relation between
// conflicting tuples (a ≻ b: tuple a is more trusted than b), in the
// prioritized-repairing framework of Staworko et al. raised as future
// work in Section 5 of the paper.
type PriorityRelation = priority.Relation

// NewPriority returns an empty priority relation; declare preferences
// with Add(a, b) for tuple identifiers a ≻ b.
func NewPriority() *PriorityRelation { return priority.NewRelation() }

// PrioritizedRepair computes a completion-optimal repair: tuples enter
// greedily along a topological completion of the priorities. Runs in
// polynomial time.
func PrioritizedRepair(ds *FDSet, t *Table, r *PriorityRelation) (*Table, error) {
	return priority.CRepair(ds, t, r)
}

// PrioritizedRepair is the Solver-scoped PrioritizedRepair on the
// encoded engine: admission runs on cached projection codes instead of
// a table clone and consistency re-check per insertion, and conflict
// strata are processed as independent tasks across the solver's
// workers. The result is byte-identical to the package-level function.
func (s *Solver) PrioritizedRepair(ds *FDSet, t *Table, r *PriorityRelation) (*Table, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	if r == nil {
		r = priority.NewRelation()
	}
	return priority.CRepairCtx(s.ctx, ds, t, r)
}

// PrioritizedOptimal enumerates all subset repairs and classifies them
// into Pareto-optimal and globally-optimal ones under the priorities.
// Enumeration-bounded; small instances only.
type PrioritizedOptimal = priority.Optimal

// ClassifyPrioritized computes the optimal-repair classification.
func ClassifyPrioritized(ds *FDSet, t *Table, r *PriorityRelation) (*PrioritizedOptimal, error) {
	return priority.Compute(ds, t, r)
}

// UnambiguousUnder reports whether the priorities determine the repair
// uniquely (exactly one Pareto-optimal repair remains) — the cleaning
// question posed at the end of Section 5.
func UnambiguousUnder(ds *FDSet, t *Table, r *PriorityRelation) (bool, error) {
	return priority.Unambiguous(ds, t, r)
}
