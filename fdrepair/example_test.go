package fdrepair_test

import (
	"fmt"

	"repro/fdrepair"
)

// The running example of the paper (Figure 1): classify the FD set and
// compute an optimal subset repair.
func ExampleOptimalSRepair() {
	sc := fdrepair.MustSchema("Office", "facility", "room", "floor", "city")
	ds := fdrepair.MustFDs(sc, "facility -> city", "facility room -> floor")
	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"HQ", "322", "3", "Paris"}, 2)
	t.MustInsert(2, fdrepair.Tuple{"HQ", "322", "30", "Madrid"}, 1)
	t.MustInsert(3, fdrepair.Tuple{"HQ", "122", "1", "Madrid"}, 1)
	t.MustInsert(4, fdrepair.Tuple{"Lab1", "B35", "3", "London"}, 2)

	s, cost, err := fdrepair.OptimalSRepair(ds, t)
	if err != nil {
		panic(err)
	}
	fmt.Printf("deleted weight %g, kept tuples %v\n", cost, s.IDs())
	// Output: deleted weight 2, kept tuples [1 4]
}

// Classify runs the dichotomy of Theorem 3.4 on an FD set.
func ExampleClassify() {
	sc := fdrepair.MustSchema("R", "A", "B", "C")
	hard := fdrepair.MustFDs(sc, "A -> B", "B -> C")
	info := fdrepair.Classify(hard)
	fmt.Printf("poly=%v hard class: %s\n", info.SRepairPolyTime, info.HardClass)

	easy := fdrepair.MustFDs(sc, "A -> B", "B -> A", "B -> C")
	fmt.Printf("poly=%v trace: %s\n", fdrepair.Classify(easy).SRepairPolyTime,
		fdrepair.ExplainTrace(fdrepair.Classify(easy)))
	// Output:
	// poly=false hard class: class 3 (reduce from ∆A→B→C)
	// poly=true trace: lhs marriage (A, B) ⇛ consensus ∅ → C ⇛ {}
}

// OptimalURepair repairs by updating cells instead of deleting tuples.
func ExampleOptimalURepair() {
	sc := fdrepair.MustSchema("R", "emp", "dept")
	ds := fdrepair.MustFDs(sc, "emp -> dept")
	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"ann", "sales"}, 2)
	t.MustInsert(2, fdrepair.Tuple{"ann", "hr"}, 1)

	res, err := fdrepair.OptimalURepair(ds, t)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %g, exact %v\n", res.Cost, res.Exact)
	// Output: cost 1, exact true
}

// MostProbableDatabase cleans a probabilistic table (Theorem 3.10).
func ExampleMostProbableDatabase() {
	sc := fdrepair.MustSchema("R", "sensor", "status")
	ds := fdrepair.MustFDs(sc, "sensor -> status")
	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"s1", "ok"}, 0.9)
	t.MustInsert(2, fdrepair.Tuple{"s1", "fault"}, 0.6)

	world, _, err := fdrepair.MostProbableDatabase(ds, t)
	if err != nil {
		panic(err)
	}
	fmt.Println("kept:", world.IDs())
	// Output: kept: [1]
}

// CountSRepairs counts subset repairs — polynomial for chain FD sets.
func ExampleCountSRepairs() {
	sc := fdrepair.MustSchema("R", "A", "B")
	ds := fdrepair.MustFDs(sc, "A -> B")
	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"a", "x"}, 1)
	t.MustInsert(2, fdrepair.Tuple{"a", "y"}, 1)
	t.MustInsert(3, fdrepair.Tuple{"b", "z"}, 1)

	c, err := fdrepair.CountSRepairs(ds, t)
	if err != nil {
		panic(err)
	}
	fmt.Println("repairs:", c)
	// Output: repairs: 2
}

// PrioritizedRepair breaks ties between repairs using trust priorities.
func ExamplePrioritizedRepair() {
	sc := fdrepair.MustSchema("R", "A", "B")
	ds := fdrepair.MustFDs(sc, "A -> B")
	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"a", "x"}, 1)
	t.MustInsert(2, fdrepair.Tuple{"a", "y"}, 1)

	r := fdrepair.NewPriority()
	r.Add(2, 1) // tuple 2 is more trusted
	rep, err := fdrepair.PrioritizedRepair(ds, t, r)
	if err != nil {
		panic(err)
	}
	fmt.Println("kept:", rep.IDs())
	// Output: kept: [2]
}

// ConsistentAnswers evaluates a query under repair semantics.
func ExampleConsistentAnswers() {
	sc := fdrepair.MustSchema("Office", "facility", "room", "floor", "city")
	ds := fdrepair.MustFDs(sc, "facility -> city", "facility room -> floor")
	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"HQ", "322", "3", "Paris"}, 2)
	t.MustInsert(2, fdrepair.Tuple{"HQ", "322", "30", "Madrid"}, 1)
	t.MustInsert(3, fdrepair.Tuple{"HQ", "122", "1", "Madrid"}, 1)
	t.MustInsert(4, fdrepair.Tuple{"Lab1", "B35", "3", "London"}, 2)

	fac, _ := sc.AttrIndex("facility")
	q, err := fdrepair.NewCQAQuery(sc, []string{"city"},
		fdrepair.CQAFilter{Attr: fac, Value: "HQ"})
	if err != nil {
		panic(err)
	}
	ans, err := fdrepair.ConsistentAnswers(ds, t, q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("certain %d, possible %d over %d repairs\n",
		len(ans.Certain), len(ans.Possible), ans.Repairs)
	// Output: certain 0, possible 2 over 2 repairs
}
