package fdrepair

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/table"
	"repro/internal/workload"
)

// solverTestInstance builds a deep, marriage-heavy tractable instance:
// the shape that exercises all three subroutines, the sparse matcher
// and the block fan-out.
func solverTestInstance(n int) (*FDSet, *Table) {
	sc := MustSchema("R", "A", "B", "C")
	ds := MustFDs(sc, "A -> B", "B -> A", "B -> C")
	tab := workload.RandomTable(sc, n, n/10+2, rand.New(rand.NewSource(int64(n))))
	return ds, tab
}

// sameRepair asserts two repairs are byte-identical: same identifiers
// in the same order, same tuples, same weights.
func sameRepair(t *testing.T, want, got *Table) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("repair size %d != %d", got.Len(), want.Len())
	}
	if !want.IsSubsetOf(got) || !got.IsSubsetOf(want) {
		t.Fatalf("repairs differ:\nwant %v\ngot  %v", want.IDs(), got.IDs())
	}
}

// TestSolverMatchesPackageFunctions: a default Solver and the package
// entry points produce identical results across every repair kind.
func TestSolverMatchesPackageFunctions(t *testing.T) {
	ds, tab := solverTestInstance(400)
	sv := NewSolver()

	wantS, wantCost, err := OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	gotS, gotCost, err := sv.OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if wantCost != gotCost {
		t.Fatalf("cost %v != %v", gotCost, wantCost)
	}
	sameRepair(t, wantS, gotS)

	wantU, err := OptimalURepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	gotU, err := sv.OptimalURepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if wantU.Cost != gotU.Cost || wantU.Method != gotU.Method {
		t.Fatalf("urepair (%v, %q) != (%v, %q)", gotU.Cost, gotU.Method, wantU.Cost, wantU.Method)
	}

	small := workload.RandomTable(ds.Schema(), 24, 3, rand.New(rand.NewSource(7)))
	wantE, wantEC, err := ExactSRepair(ds, small)
	if err != nil {
		t.Fatal(err)
	}
	gotE, gotEC, err := sv.ExactSRepair(ds, small)
	if err != nil {
		t.Fatal(err)
	}
	if wantEC != gotEC {
		t.Fatalf("exact cost %v != %v", gotEC, wantEC)
	}
	sameRepair(t, wantE, gotE)

	wantA, _, err := ApproxSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	gotA, _, err := sv.ApproxSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	sameRepair(t, wantA, gotA)

	prob := table.New(ds.Schema())
	rng := rand.New(rand.NewSource(11))
	for _, r := range small.Rows() {
		prob.MustInsert(r.ID, r.Tuple, 0.05+0.9*rng.Float64())
	}
	wantM, wantP, err := MostProbableDatabase(ds, prob)
	if err != nil {
		t.Fatal(err)
	}
	gotM, gotP, err := sv.MostProbableDatabase(ds, prob)
	if err != nil {
		t.Fatal(err)
	}
	if wantP != gotP {
		t.Fatalf("mpd probability %v != %v", gotP, wantP)
	}
	sameRepair(t, wantM, gotM)
}

// TestConcurrentSolvers: many Solver instances with different
// parallelism settings run concurrently (several goroutines per
// solver, all over one shared backing table) and every result is
// byte-identical to the serial engine. Under -race this is the proof
// that no shared mutable state remains on the solve hot path.
func TestConcurrentSolvers(t *testing.T) {
	ds, tab := solverTestInstance(1200)
	want, wantCost, err := OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	wantU, err := OptimalURepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for _, workers := range []int{1, 2, 4, 8} {
		sv := NewSolver(WithParallelism(workers), WithStats())
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(sv *Solver, workers int) {
				defer wg.Done()
				for iter := 0; iter < 3; iter++ {
					got, cost, err := sv.OptimalSRepair(ds, tab)
					if err != nil {
						errc <- err
						return
					}
					if cost != wantCost || got.Len() != want.Len() || !got.IsSubsetOf(want) {
						errc <- fmt.Errorf("workers=%d: repair diverged from serial", workers)
						return
					}
					res, err := sv.OptimalURepair(ds, tab)
					if err != nil {
						errc <- err
						return
					}
					if res.Cost != wantU.Cost {
						errc <- fmt.Errorf("workers=%d: urepair cost %v != %v", workers, res.Cost, wantU.Cost)
						return
					}
				}
			}(sv, workers)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestCancelBeforeSolve: a Solver whose context is already cancelled
// refuses the solve immediately with context.Canceled, for every entry
// point.
func TestCancelBeforeSolve(t *testing.T) {
	ds, tab := solverTestInstance(400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sv := NewSolver(WithContext(ctx))
	if _, _, err := sv.OptimalSRepair(ds, tab); !errors.Is(err, context.Canceled) {
		t.Fatalf("OptimalSRepair err = %v, want context.Canceled", err)
	}
	if _, err := sv.OptimalURepair(ds, tab); !errors.Is(err, context.Canceled) {
		t.Fatalf("OptimalURepair err = %v, want context.Canceled", err)
	}
	if _, _, err := sv.ApproxSRepair(ds, tab); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApproxSRepair err = %v, want context.Canceled", err)
	}
	if _, _, err := sv.ExactSRepair(ds, tab); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExactSRepair err = %v, want context.Canceled", err)
	}
}

// TestCancelMidRecursion: cancelling a running solve makes it return
// the context error promptly, and the backing table comes out of the
// aborted solve unscathed — a subsequent serial solve still produces
// the reference repair.
func TestCancelMidRecursion(t *testing.T) {
	ds, tab := solverTestInstance(6400)
	want, wantCost, err := OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	sawCancel := false
	for iter := 0; iter < 20 && !sawCancel; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		sv := NewSolver(WithContext(ctx), WithParallelism(4))
		timer := time.AfterFunc(time.Duration(iter)*100*time.Microsecond, cancel)
		_, _, err := sv.OptimalSRepair(ds, tab)
		timer.Stop()
		cancel()
		switch {
		case err == nil:
			// The solve outran the cancel — legal; try a later cancel point.
		case errors.Is(err, context.Canceled):
			sawCancel = true
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if !sawCancel {
		t.Log("no iteration observed a mid-flight cancel (machine too fast); pre-cancel path is covered by TestCancelBeforeSolve")
	}
	// Whatever was aborted above, the table must be intact: the serial
	// engine still reproduces the reference repair bit for bit.
	got, cost, err := OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if cost != wantCost {
		t.Fatalf("post-cancel cost %v != %v", cost, wantCost)
	}
	sameRepair(t, want, got)
}

// TestCancelDeadline: a deadline in the past surfaces as
// context.DeadlineExceeded (the distinction matters to callers doing
// per-request budgeting).
func TestCancelDeadline(t *testing.T) {
	ds, tab := solverTestInstance(400)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sv := NewSolver(WithContext(ctx))
	if _, _, err := sv.OptimalSRepair(ds, tab); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSolverStats: counters accumulate across solves and reset.
func TestSolverStats(t *testing.T) {
	ds, tab := solverTestInstance(400)
	sv := NewSolver(WithStats())
	if st := sv.Stats(); st.Nodes != 0 {
		t.Fatalf("fresh solver has nodes = %d", st.Nodes)
	}
	if _, _, err := sv.OptimalSRepair(ds, tab); err != nil {
		t.Fatal(err)
	}
	st1 := sv.Stats()
	if st1.Nodes == 0 || st1.BlocksSerial == 0 {
		t.Fatalf("stats not collected: %+v", st1)
	}
	if st1.MatcherFastPath+st1.MatcherDense+st1.MatcherSparse == 0 {
		t.Fatalf("marriage instance recorded no matcher dispatches: %+v", st1)
	}
	if _, _, err := sv.OptimalSRepair(ds, tab); err != nil {
		t.Fatal(err)
	}
	st2 := sv.Stats()
	if st2.Nodes != 2*st1.Nodes {
		t.Fatalf("nodes after two identical solves = %d, want %d", st2.Nodes, 2*st1.Nodes)
	}
	// The second solve should have been served (partly) from the arena
	// the first one warmed up.
	if st2.ArenaHits <= st1.ArenaHits {
		t.Fatalf("arena hits did not grow: %+v -> %+v", st1, st2)
	}
	sv.ResetStats()
	if st := sv.Stats(); st.Nodes != 0 || st.ArenaHits != 0 {
		t.Fatalf("reset left %+v", st)
	}
	// A stats-less solver reports zeros and must not panic.
	plain := NewSolver()
	if _, _, err := plain.OptimalSRepair(ds, tab); err != nil {
		t.Fatal(err)
	}
	if st := plain.Stats(); st != (SolveStats{}) {
		t.Fatalf("stats-less solver reported %+v", st)
	}
}

// TestSolverParallelism: option plumbing.
// TestSolverParallelism pins the clamp semantics of WithParallelism:
// 0 and negative values mean serial — explicitly clamped in NewSolver,
// not silently dropped by a `workers > 1` gate — and Parallelism
// reports the clamped value the solver actually runs with. Each
// clamped solver must still solve correctly.
func TestSolverParallelism(t *testing.T) {
	if got := NewSolver().Parallelism(); got != 1 {
		t.Fatalf("default parallelism = %d", got)
	}
	ds, tab := solverTestInstance(120)
	want, wantCost, err := OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {-1, 1}, {-3, 1}, {1, 1}, {8, 8},
	} {
		sv := NewSolver(WithParallelism(tc.in))
		if got := sv.Parallelism(); got != tc.want {
			t.Fatalf("WithParallelism(%d).Parallelism() = %d, want %d", tc.in, got, tc.want)
		}
		got, cost, err := sv.OptimalSRepair(ds, tab)
		if err != nil {
			t.Fatalf("WithParallelism(%d): %v", tc.in, err)
		}
		if cost != wantCost {
			t.Fatalf("WithParallelism(%d): cost %v != %v", tc.in, cost, wantCost)
		}
		sameRepair(t, want, got)
	}
}
