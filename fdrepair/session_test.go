package fdrepair

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// sessionFDSets returns the tractable FD sets the session differential
// suite runs scripts against, covering all three simplification kinds
// at the top of the chain.
func sessionFDSets() map[string]*FDSet {
	return workload.TractableSets()
}

// mutateSession applies one random mutation step to the session and
// mirrors it (by value) so the reference table can be rebuilt: a batch
// append of 1–8 rows, or 1–8 cell updates drawing from the original
// domain plus occasional never-seen values (growing the dictionaries,
// eventually overflowing packed key widths).
func mutateSession(t *testing.T, s *Session, rng *rand.Rand, domain int) {
	t.Helper()
	val := func() string {
		if rng.Intn(4) == 0 {
			return fmt.Sprintf("new%d", rng.Intn(4*domain))
		}
		return fmt.Sprintf("v%d", rng.Intn(domain))
	}
	arity := s.Table().Schema().Arity()
	if rng.Intn(2) == 0 {
		k := 1 + rng.Intn(8)
		tuples := make([]Tuple, k)
		weights := make([]float64, k)
		for i := range tuples {
			tup := make(Tuple, arity)
			for a := range tup {
				tup[a] = val()
			}
			tuples[i] = tup
			weights[i] = float64(1 + rng.Intn(4))
		}
		if _, err := s.AppendRows(tuples, weights); err != nil {
			t.Fatalf("AppendRows: %v", err)
		}
		return
	}
	ids := s.Table().IDs()
	k := 1 + rng.Intn(8)
	updates := make([]CellUpdate, k)
	for i := range updates {
		updates[i] = CellUpdate{
			ID:   ids[rng.Intn(len(ids))],
			Attr: rng.Intn(arity),
			Val:  val(),
		}
	}
	if err := s.SetCells(updates); err != nil {
		t.Fatalf("SetCells: %v", err)
	}
}

// checkSessionMatchesColdSolve asserts the session's incremental
// repair is byte-identical (rendered table and exact cost) to a
// from-scratch solve of a clone of the current table on a fresh
// serial solver — and to a cold solve over the session's own live
// (incrementally extended) encoding.
func checkSessionMatchesColdSolve(t *testing.T, s *Session, step string) {
	t.Helper()
	got, gotCost, err := s.Repair()
	if err != nil {
		t.Fatalf("%s: Session.Repair: %v", step, err)
	}
	ref := NewSolver()
	want, wantCost, err := ref.OptimalSRepair(s.FDs(), s.Table().Clone())
	if err != nil {
		t.Fatalf("%s: reference solve: %v", step, err)
	}
	if got.String() != want.String() || gotCost != wantCost {
		t.Fatalf("%s: incremental repair diverged from cold solve\ncost %v vs %v\ngot:\n%swant:\n%s",
			step, gotCost, wantCost, got.String(), want.String())
	}
	// The live encoding (chunk-extended, possibly with code holes) must
	// solve identically to the fresh canonical build above.
	live, liveCost, err := ref.OptimalSRepair(s.FDs(), s.Table())
	if err != nil {
		t.Fatalf("%s: cold solve on live table: %v", step, err)
	}
	if live.String() != want.String() || liveCost != wantCost {
		t.Fatalf("%s: cold solve over the extended encoding diverged\ncost %v vs %v\ngot:\n%swant:\n%s",
			step, liveCost, wantCost, live.String(), want.String())
	}
}

// TestSessionDifferentialRandomScripts is the pinning suite: random
// mutation scripts against every tractable FD set at several worker
// counts, each Repair compared byte-for-byte with a from-scratch
// solve. Run under -race in CI.
func TestSessionDifferentialRandomScripts(t *testing.T) {
	const domain = 12
	for name, ds := range sessionFDSets() {
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(workers)*1000 + int64(len(name))))
				tab := workload.RandomWeightedTable(ds.Schema(), 300, domain, 4, rng)
				s, err := NewSession(NewSolver(WithParallelism(workers)), ds, tab)
				if err != nil {
					t.Fatalf("NewSession: %v", err)
				}
				checkSessionMatchesColdSolve(t, s, "initial")
				for step := 0; step < 12; step++ {
					mutateSession(t, s, rng, domain)
					checkSessionMatchesColdSolve(t, s, fmt.Sprintf("step %d", step))
				}
			})
		}
	}
}

// TestSessionDirtyFallbackPaths pins the two fallback triggers: a
// dirty fraction above the threshold must run a full solve, and
// WithDirtyFallback(0) must run full whenever anything is dirty —
// both byte-identical to from-scratch.
func TestSessionDirtyFallbackPaths(t *testing.T) {
	ds := sessionFDSets()["marriage"]
	rng := rand.New(rand.NewSource(42))
	tab := workload.RandomWeightedTable(ds.Schema(), 200, 10, 4, rng)

	s, err := NewSession(NewSolver(WithParallelism(4)), ds, tab)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "seed")
	if !s.Stats().FullSolve {
		t.Fatalf("first repair must be a full solve: %+v", s.Stats())
	}

	// Touch well over the default 30% threshold.
	ids := s.Table().IDs()
	var updates []CellUpdate
	for i := 0; i < 150; i++ {
		updates = append(updates, CellUpdate{ID: ids[rng.Intn(len(ids))], Attr: rng.Intn(3), Val: fmt.Sprintf("v%d", rng.Intn(10))})
	}
	if err := s.SetCells(updates); err != nil {
		t.Fatalf("SetCells: %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "high-dirty")
	if st := s.Stats(); !st.FullSolve || st.BlocksReused != 0 {
		t.Fatalf("high dirty fraction must trigger the full-solve fallback: %+v", st)
	}

	// Zero threshold: any dirty row forces full.
	s2, err := NewSession(NewSolver(), ds, tab.Clone(), WithDirtyFallback(0))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	checkSessionMatchesColdSolve(t, s2, "seed-2")
	if _, err := s2.AppendRows([]Tuple{{"a1", "b1", "c1"}}, nil); err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	checkSessionMatchesColdSolve(t, s2, "append-under-zero-threshold")
	if st := s2.Stats(); !st.FullSolve {
		t.Fatalf("zero threshold must run full on any dirty row: %+v", st)
	}
}

// TestSessionIncrementalReusesCleanBlocks asserts the perf-defining
// property: after a tiny mutation, Repair re-solves only the touched
// blocks and splices the rest from cache.
func TestSessionIncrementalReusesCleanBlocks(t *testing.T) {
	ds := sessionFDSets()["chain"]
	rng := rand.New(rand.NewSource(7))
	tab := workload.RandomWeightedTable(ds.Schema(), 400, 40, 4, rng)
	s, err := NewSession(NewSolver(WithParallelism(2)), ds, tab)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "seed")
	blocks := s.Stats().Blocks
	if blocks < 10 {
		t.Fatalf("want a many-block instance, got %d blocks", blocks)
	}
	if _, err := s.AppendRows([]Tuple{{"v0", "v1", "v2"}}, nil); err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "append-1")
	st := s.Stats()
	if st.FullSolve {
		t.Fatalf("1-row append must not trigger a full solve: %+v", st)
	}
	if st.BlocksSolved > 2 || st.BlocksReused < blocks-2 {
		t.Fatalf("1-row append should re-solve at most its own block(s): %+v", st)
	}
	if st.DirtyRows != 1 {
		t.Fatalf("dirty-row accounting: %+v", st)
	}
}

// TestSessionSetFDsDropsCache pins the FD-set-change path: replacing
// the set forces a full re-solve under the new chain, while setting an
// equal set keeps the cache warm.
func TestSessionSetFDsDropsCache(t *testing.T) {
	sets := sessionFDSets()
	rng := rand.New(rand.NewSource(3))
	tab := workload.RandomWeightedTable(sets["chain"].Schema(), 250, 10, 4, rng)
	s, err := NewSession(NewSolver(WithParallelism(4)), sets["chain"], tab)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "chain-seed")

	// Equal set (fresh but identical value): caches stay valid.
	equal := workload.TractableSets()["chain"]
	if err := s.SetFDs(equal); err != nil {
		t.Fatalf("SetFDs(equal): %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "equal-set")
	if st := s.Stats(); st.FullSolve || st.BlocksReused == 0 {
		t.Fatalf("equal FD set must keep the block cache: %+v", st)
	}

	// Different set: new chain, new partition, full solve.
	if err := s.SetFDs(sets["marriage"]); err != nil {
		t.Fatalf("SetFDs(marriage): %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "marriage-after-switch")
	if st := s.Stats(); !st.FullSolve {
		t.Fatalf("FD-set change must force a full solve: %+v", st)
	}
	// And incremental solves resume under the new set.
	if _, err := s.AppendRows([]Tuple{{"x", "y", "z"}}, nil); err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "append-after-switch")
	if st := s.Stats(); st.FullSolve {
		t.Fatalf("session must return to incremental repairs after the switch: %+v", st)
	}
}

// TestSessionTrivialAndHardSets covers the no-block-structure edges:
// a trivial FD set repairs to the table itself at zero cost, and a
// hard set fails with ErrNoSimplification without corrupting session
// state.
func TestSessionTrivialAndHardSets(t *testing.T) {
	sc := MustSchema("R", "A", "B", "C")
	trivial := MustFDs(sc, "A -> A")
	tab := workload.RandomTable(sc, 50, 5, rand.New(rand.NewSource(1)))
	s, err := NewSession(NewSolver(), trivial, tab)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	rep, cost, err := s.Repair()
	if err != nil || cost != 0 || rep.String() != s.Table().String() {
		t.Fatalf("trivial set: rep/cost/err = %v/%v/%v", rep != nil, cost, err)
	}

	hard := workload.HardSets()["ΔA→B→C"]
	if err := s.SetFDs(hard); err != nil {
		t.Fatalf("SetFDs(hard): %v", err)
	}
	if _, _, err := s.Repair(); err != ErrNoSimplification {
		t.Fatalf("hard set: want ErrNoSimplification, got %v", err)
	}
	// Recover by switching back to a tractable set.
	if err := s.SetFDs(workload.TractableSets()["chain"]); err != nil {
		t.Fatalf("SetFDs(chain): %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "recovered")
}

// TestSessionEmptyTable covers the n=0 edge through the session path.
func TestSessionEmptyTable(t *testing.T) {
	ds := sessionFDSets()["chain"]
	s, err := NewSession(NewSolver(), ds, NewTable(ds.Schema()))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	rep, cost, err := s.Repair()
	if err != nil || cost != 0 || rep.Len() != 0 {
		t.Fatalf("empty table: len/cost/err = %v/%v/%v", rep.Len(), cost, err)
	}
	// Grow from empty and keep matching cold solves.
	if _, err := s.AppendRows([]Tuple{{"a", "b", "c"}, {"a", "b2", "c"}}, []float64{2, 1}); err != nil {
		t.Fatalf("AppendRows: %v", err)
	}
	checkSessionMatchesColdSolve(t, s, "grown-from-empty")
}

// TestSessionImpactReport exercises WithImpactRecording: per-FD
// violation counts must drop to zero after a repair, block accounting
// must cover the whole table, and cells-changed must equal deleted
// rows times arity.
func TestSessionImpactReport(t *testing.T) {
	_, ds, tab := workload.Office()
	s, err := NewSession(NewSolver(), ds, tab, WithImpactRecording())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if s.LastImpact() != nil {
		t.Fatalf("impact before any repair")
	}
	rep, cost, err := s.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	im := s.LastImpact()
	if im == nil {
		t.Fatalf("no impact recorded")
	}
	if im.Cost != cost {
		t.Fatalf("impact cost %v != repair cost %v", im.Cost, cost)
	}
	totalRows, totalKept, totalCells := 0, 0, 0
	for _, b := range im.Blocks {
		totalRows += b.Rows
		totalKept += b.Kept
		totalCells += b.CellsChanged
	}
	if totalRows != s.Table().Len() || totalKept != rep.Len() {
		t.Fatalf("block accounting: rows %d/%d kept %d/%d", totalRows, s.Table().Len(), totalKept, rep.Len())
	}
	arity := s.Table().Schema().Arity()
	if totalCells != (totalRows-totalKept)*arity {
		t.Fatalf("cells changed %d, want %d", totalCells, (totalRows-totalKept)*arity)
	}
	for _, v := range im.Violations {
		if v.Before == 0 {
			t.Fatalf("Office table must start with violations: %+v", v)
		}
		if v.After != 0 {
			t.Fatalf("repair must clear all violations: %+v", v)
		}
	}
}
