package fdrepair

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/mpd"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
)

// ErrSolverClosed is returned by every solve entry point (and by
// Stream.Submit) after Solver.Close: the solver is quiescing or
// quiesced and admits no new work.
var ErrSolverClosed = errors.New("fdrepair: solver is closed")

// PanicError is a panic recovered inside a solve and converted into
// that block's or request's error: it carries the panic value and the
// stack of the panicking goroutine. The scheduler isolates task panics
// (one poisoned table never takes down the shared scheduler), and the
// batch/stream layer isolates request-body panics; aggregate counts
// land in SolveStats.Panics. Detect with errors.As:
//
//	var pe *fdrepair.PanicError
//	if errors.As(res.Err, &pe) { log.Printf("poisoned input: %v", pe.Value) }
type PanicError = solve.PanicError

// SolveStats is a snapshot of a Solver's counters: recursion nodes
// visited by OptSRepair, scheduler task accounting (blocks run inline
// vs executed as enqueued tasks, and how many of those were stolen by
// a worker other than their producer), matcher path dispatches
// (singleton/star fast path, dense Hungarian, sparse
// Jonker–Volgenant), the U-repair planner's per-component decisions,
// and scratch-arena reuse. All fields are cumulative across the
// solver's solves since the last ResetStats; the zero value means
// stats were not enabled.
type SolveStats = solve.Snapshot

// Solver is a per-configuration repair engine: it owns a worker
// budget executed by a work-stealing task scheduler (independent
// blocks at every recursion depth, matching components and planner
// components become stealable tasks; a parent awaiting its blocks
// helps execute pending work instead of parking), scratch arenas
// sharded per scheduler worker over sync.Pool overflow (recycled
// across recursion levels, matching components and sequential solves,
// pre-sized from the input table's shape), an optional cancellation
// context and an optional stats record. Construct with NewSolver; the
// zero value is not usable.
//
// A Solver is safe for concurrent use: multiple goroutines may run
// solves on one Solver, and multiple Solvers with different settings
// may run concurrently — no solve state is shared between Solvers, so
// heavy multi-tenant traffic can give every request (or tenant) its
// own budget and deadline. Results are byte-identical to the serial
// engine regardless of parallelism or arena reuse.
//
//	sv := fdrepair.NewSolver(
//		fdrepair.WithParallelism(8),
//		fdrepair.WithContext(ctx),
//		fdrepair.WithStats(),
//	)
//	s, cost, err := sv.OptimalSRepair(ds, t)   // honors ctx's deadline
//	fmt.Printf("%+v\n", sv.Stats())
type Solver struct {
	stats *solve.Stats
	ctx   *solve.Ctx

	// Lifecycle: begin/end bracket every solve (including each batch or
	// stream request); Close flips closed and waits for inflight to
	// drain, after which the scheduler is idle by construction (helper
	// goroutines exit when the deques empty).
	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

// solverConfig collects option values until NewSolver freezes them
// into the solve context.
type solverConfig struct {
	workers int
	base    context.Context
	stats   bool
}

// SolverOption configures a Solver under construction.
type SolverOption func(*solverConfig)

// WithParallelism sets the solver's worker budget: independent blocks
// of the repair recursion (at every depth), connected components of
// the marriage matching graph, U-repair planner components and batch
// requests (SolveBatch) are solved concurrently by up to n
// work-stealing workers. Values of n ≤ 1 — including 0 and negatives —
// are clamped to 1, meaning serial (the default); Parallelism reports
// the clamped value. Results are identical to the serial algorithm.
func WithParallelism(n int) SolverOption {
	return func(c *solverConfig) { c.workers = n }
}

// WithContext attaches a cancellation context: every solve run on the
// Solver checks it cooperatively at recursion and component
// boundaries and returns ctx.Err() (context.Canceled or
// context.DeadlineExceeded) promptly instead of burning CPU. The
// input table is never mutated by a solve, cancelled or not.
func WithContext(ctx context.Context) SolverOption {
	return func(c *solverConfig) { c.base = ctx }
}

// WithStats enables counter collection; read with Stats, zero with
// ResetStats. Collection costs a few atomic increments per recursion
// node and is off by default.
func WithStats() SolverOption {
	return func(c *solverConfig) { c.stats = true }
}

// NewSolver builds a Solver from the options (defaults: serial,
// non-cancellable, no stats).
func NewSolver(opts ...SolverOption) *Solver {
	cfg := solverConfig{workers: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.workers < 1 {
		// WithParallelism(0) and negative values mean serial, explicitly:
		// the clamp happens here (not buried in the scheduler gate) so
		// Parallelism() reports what the solver actually runs with.
		cfg.workers = 1
	}
	s := &Solver{}
	if cfg.stats {
		s.stats = new(solve.Stats)
	}
	s.ctx = solve.New(cfg.workers, cfg.base, s.stats)
	return s
}

// Parallelism returns the solver's worker budget (1 = serial). The
// value is the clamped budget the solver actually runs with:
// WithParallelism(0) and negative values report 1.
func (s *Solver) Parallelism() int { return s.ctx.Workers() }

// begin admits one solve, failing with ErrSolverClosed once Close has
// been called. Every admitted solve must be paired with end.
func (s *Solver) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSolverClosed
	}
	s.inflight.Add(1)
	return nil
}

// end retires one solve admitted by begin.
func (s *Solver) end() { s.inflight.Done() }

// Close quiesces the solver: new solves (and stream Submits) are
// refused with ErrSolverClosed, and Close blocks until every in-flight
// solve has finished — at which point the work-stealing scheduler is
// idle (its helper goroutines exit when the deques drain, so a
// quiesced Solver holds no goroutines and no queued tasks). In-flight
// solves are not cancelled: pair Close with per-request deadlines (or
// a cancellable WithContext) to bound the drain, and pass a ctx with a
// deadline to bound the wait itself — Close returns ctx.Err() if the
// drain outlives it, with the stragglers still draining in the
// background.
//
// Close is idempotent; concurrent and repeated calls all wait for the
// same drain.
func (s *Solver) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fdrepair: Close: %w", ctx.Err())
	}
}

// Stats returns a snapshot of the solver's counters (zero when
// WithStats was not given).
func (s *Solver) Stats() SolveStats { return s.stats.Snapshot() }

// ResetStats zeroes the solver's counters.
func (s *Solver) ResetStats() { s.stats.Reset() }

// OptimalSRepair is the Solver-scoped fdrepair.OptimalSRepair: the
// paper's polynomial Algorithm 1 under this solver's budget, arenas,
// cancellation and stats.
func (s *Solver) OptimalSRepair(ds *FDSet, t *Table) (*Table, float64, error) {
	if err := s.begin(); err != nil {
		return nil, 0, err
	}
	defer s.end()
	rep, err := srepair.OptSRepairCtx(s.ctx, ds, t)
	if err != nil {
		return nil, 0, err
	}
	return rep, table.DistSub(rep, t), nil
}

// ExactSRepair is the Solver-scoped fdrepair.ExactSRepair; the
// branch-and-bound cover search honors the solver's deadline, which
// bounds its exponential worst case.
func (s *Solver) ExactSRepair(ds *FDSet, t *Table) (*Table, float64, error) {
	if err := s.begin(); err != nil {
		return nil, 0, err
	}
	defer s.end()
	rep, err := srepair.ExactCtx(s.ctx, ds, t)
	if err != nil {
		return nil, 0, err
	}
	return rep, table.DistSub(rep, t), nil
}

// ApproxSRepair is the Solver-scoped fdrepair.ApproxSRepair.
func (s *Solver) ApproxSRepair(ds *FDSet, t *Table) (*Table, float64, error) {
	if err := s.begin(); err != nil {
		return nil, 0, err
	}
	defer s.end()
	rep, err := srepair.Approx2Ctx(s.ctx, ds, t)
	if err != nil {
		return nil, 0, err
	}
	return rep, table.DistSub(rep, t), nil
}

// OptimalURepair is the Solver-scoped fdrepair.OptimalURepair: the
// Section-4 planner's inner S-repair solves inherit the solver's
// budget and arenas.
func (s *Solver) OptimalURepair(ds *FDSet, t *Table) (URepairResult, error) {
	if err := s.begin(); err != nil {
		return URepairResult{}, err
	}
	defer s.end()
	return urepair.RepairCtx(s.ctx, ds, t)
}

// MostProbableDatabase is the Solver-scoped
// fdrepair.MostProbableDatabase.
func (s *Solver) MostProbableDatabase(ds *FDSet, t *Table) (*Table, float64, error) {
	if err := s.begin(); err != nil {
		return nil, 0, err
	}
	defer s.end()
	rep, err := mpd.SolveCtx(s.ctx, ds, t)
	if err != nil {
		return nil, 0, err
	}
	return rep, mpd.Probability(t, rep), nil
}
