package fdrepair

import (
	"testing"

	"repro/internal/table"
	"repro/internal/workload"
)

func TestCountAndEnumerateFacade(t *testing.T) {
	_, ds, tab := workload.Office()
	c, err := CountSRepairs(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	reps, total, err := SubsetRepairs(ds, tab, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Int64() != int64(total) || len(reps) != total {
		t.Fatalf("count %v, enumerated %d/%d", c, len(reps), total)
	}
	for _, r := range reps {
		if !r.Satisfies(ds) {
			t.Fatal("enumerated repair inconsistent")
		}
	}
}

func TestRestrictedAndMixedFacade(t *testing.T) {
	sc := MustSchema("R", "A", "B", "C")
	ds := MustFDs(sc, "A -> B", "B -> C")
	tab := NewTable(sc)
	tab.MustInsert(1, Tuple{"a", "b1", "c1"}, 1)
	tab.MustInsert(2, Tuple{"a", "b2", "c2"}, 1)
	_, free, err := ExactURepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	_, restricted, err := RestrictedURepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(free, 1) || !table.WeightEq(restricted, 2) {
		t.Fatalf("free %v restricted %v, want 1 and 2", free, restricted)
	}
	_, deleted, mixed, err := MixedRepair(ds, tab, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(mixed, 0.5) || len(deleted) != 1 {
		t.Fatalf("mixed %v deleted %v", mixed, deleted)
	}
}

func TestPriorityFacade(t *testing.T) {
	_, ds, tab := workload.Office()
	r := NewPriority()
	r.Add(1, 2)
	r.Add(1, 3)
	rep, err := PrioritizedRepair(ds, tab, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Has(1) || !rep.Has(4) || rep.Len() != 2 {
		t.Fatalf("repair = %v", rep.IDs())
	}
	opt, err := ClassifyPrioritized(ds, tab, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.All) != 2 || len(opt.Pareto) != 1 || len(opt.Global) != 1 {
		t.Fatalf("classification = %d/%d/%d", len(opt.All), len(opt.Pareto), len(opt.Global))
	}
	unique, err := UnambiguousUnder(ds, tab, r)
	if err != nil || !unique {
		t.Fatalf("unambiguous = %v, %v", unique, err)
	}
}

func TestDiffRepairFacade(t *testing.T) {
	_, ds, tab := workload.Office()
	s, _, err := OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DiffRepair(tab, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Deleted) != 2 || len(d.Changed) != 0 {
		t.Fatalf("diff = %+v", d)
	}
}

func TestCFDFacade(t *testing.T) {
	sc := MustSchema("Cust", "country", "areaCode", "city")
	c, err := NewConditionalFD(sc, "country areaCode -> city",
		[]string{"44", "131"}, "EDI")
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(sc)
	tab.MustInsert(1, Tuple{"44", "131", "EDI"}, 1)
	tab.MustInsert(2, Tuple{"44", "131", "LON"}, 1)
	if CFDSatisfies([]*ConditionalFD{c}, tab) {
		t.Fatal("table must violate the CFD")
	}
	res, err := ExactCFDSRepair([]*ConditionalFD{c}, tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forced) != 1 || !table.WeightEq(res.TotalCost, 1) {
		t.Fatalf("result = %+v", res)
	}
	ap, err := ApproxCFDSRepair([]*ConditionalFD{c}, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !CFDSatisfies([]*ConditionalFD{c}, ap.Repair) {
		t.Fatal("approx repair violates")
	}
}
