package fdrepair

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/workload"
)

func TestEndToEndRunningExample(t *testing.T) {
	_, ds, tab := workload.Office()
	info := Classify(ds)
	if !info.SRepairPolyTime || !info.URepairExact {
		t.Fatalf("running example should be fully tractable: %+v", info)
	}
	if len(info.Trace) != 4 {
		t.Fatalf("trace = %v", info.Trace)
	}
	s, cost, err := OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(cost, 2) || !s.Satisfies(ds) {
		t.Fatalf("S-repair cost = %v", cost)
	}
	u, err := OptimalURepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Exact || !table.WeightEq(u.Cost, 2) {
		t.Fatalf("U-repair cost = %v exact=%v", u.Cost, u.Exact)
	}
}

func TestClassifyHardSet(t *testing.T) {
	sc := MustSchema("R", "A", "B", "C")
	ds := MustFDs(sc, "A -> B", "B -> C")
	info := Classify(ds)
	if info.SRepairPolyTime {
		t.Fatal("{A→B, B→C} is APX-complete")
	}
	if !strings.Contains(info.HardClass, "class 3") {
		t.Errorf("HardClass = %q, want class 3", info.HardClass)
	}
	if info.URepairExact {
		t.Error("U-repair must not claim exactness")
	}
	if got := ExplainTrace(info); got != "(no simplification applies)" {
		t.Errorf("trace = %q", got)
	}
	// A set that simplifies partway renders a STUCK chain: ∆2 (zip) of
	// Example 4.7 applies common lhs "state" and then gets stuck.
	z := MustSchema("Z", "state", "city", "zip", "country")
	zinfo := Classify(MustFDs(z, "state city -> zip", "state zip -> country"))
	if zinfo.SRepairPolyTime {
		t.Fatal("∆2 (zip) is APX-complete")
	}
	if got := ExplainTrace(zinfo); !strings.Contains(got, "STUCK") || !strings.Contains(got, "common lhs state") {
		t.Errorf("zip trace = %q", got)
	}
}

func TestClassifyURepairOnlyTractable(t *testing.T) {
	// ∆0 = {product→price, buyer→email}: hard for S-repairs, poly for
	// U-repairs (Corollary 4.11(2)).
	sc := MustSchema("Purchase", "product", "price", "buyer", "email")
	ds := MustFDs(sc, "product -> price", "buyer -> email")
	info := Classify(ds)
	if info.SRepairPolyTime {
		t.Fatal("∆0 is hard for S-repairs")
	}
	if !info.URepairExact {
		t.Fatal("∆0 is tractable for U-repairs")
	}
	// And the reverse direction: ∆A↔B→C (Corollary 4.11(1)).
	abc := MustSchema("R", "A", "B", "C")
	swap := MustFDs(abc, "A -> B", "B -> A", "B -> C")
	info2 := Classify(swap)
	if !info2.SRepairPolyTime {
		t.Fatal("∆A↔B→C is tractable for S-repairs")
	}
	if info2.URepairExact {
		t.Fatal("∆A↔B→C is APX-complete for U-repairs (Thm 4.10)")
	}
}

func TestOptimalSRepairFailsCleanly(t *testing.T) {
	sc := MustSchema("R", "A", "B", "C")
	ds := MustFDs(sc, "A -> B", "B -> C")
	tab := NewTable(sc)
	tab.MustInsert(1, Tuple{"a", "b", "c"}, 1)
	if _, _, err := OptimalSRepair(ds, tab); !errors.Is(err, srepair.ErrNoSimplification) {
		t.Fatalf("err = %v", err)
	}
	// The exact and approximate fallbacks work.
	if _, _, err := ExactSRepair(ds, tab); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ApproxSRepair(ds, tab); err != nil {
		t.Fatal(err)
	}
}

func TestMostProbableDatabaseFacade(t *testing.T) {
	sc := MustSchema("R", "A", "B")
	ds := MustFDs(sc, "A -> B")
	tab := NewTable(sc)
	tab.MustInsert(1, Tuple{"a", "x"}, 0.9)
	tab.MustInsert(2, Tuple{"a", "y"}, 0.7)
	s, p, err := MostProbableDatabase(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(1) || s.Has(2) {
		t.Fatalf("MPD = %v", s.IDs())
	}
	if p <= 0 || p > 1 {
		t.Fatalf("probability = %v", p)
	}
}

func TestExactURepairFacade(t *testing.T) {
	sc := MustSchema("R", "A", "B")
	ds := MustFDs(sc, "A -> B")
	tab := NewTable(sc)
	tab.MustInsert(1, Tuple{"a", "x"}, 1)
	tab.MustInsert(2, Tuple{"a", "y"}, 1)
	_, cost, err := ExactURepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	if !table.WeightEq(cost, 1) {
		t.Fatalf("cost = %v", cost)
	}
}

func TestExplainTraceEdgeCases(t *testing.T) {
	sc := MustSchema("R", "A", "B")
	triv := Classify(MustFDs(sc, "A -> A"))
	if got := ExplainTrace(triv); got != "(already trivial)" {
		t.Errorf("trivial trace = %q", got)
	}
	stuck := Classify(MustFDs(MustSchema("S", "A", "B", "C"), "A -> B", "B -> C"))
	if got := ExplainTrace(stuck); got != "(no simplification applies)" {
		t.Errorf("stuck trace = %q", got)
	}
}

// TestCatalogueAgreement: the facade's Classify agrees with the paper's
// catalogue on every named FD set.
func TestCatalogueAgreement(t *testing.T) {
	for _, entry := range workload.Catalogue() {
		info := Classify(entry.Set)
		if info.SRepairPolyTime != entry.SRepairPoly {
			t.Errorf("%s: SRepairPolyTime = %v, paper says %v", entry.Name, info.SRepairPolyTime, entry.SRepairPoly)
		}
		if entry.URepairKnownPoly && !info.URepairExact {
			// The planner's sufficient conditions must cover every case
			// the paper proves polynomial... except ones needing
			// decompositions the planner applies at repair time. All
			// catalogued poly cases are covered.
			t.Errorf("%s: paper proves U-repair poly but planner is approximate", entry.Name)
		}
		if entry.URepairKnownHard && info.URepairExact {
			t.Errorf("%s: paper proves U-repair APX-hard but planner claims exact", entry.Name)
		}
	}
}
