package fdrepair

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// batchTestRequests builds a mixed batch: tables of different sizes
// and algorithms sharing one marriage-heavy tractable FD set, plus a
// hard set solved exactly and approximately.
func batchTestRequests() []Request {
	ds, small := solverTestInstance(60)
	_, mid := solverTestInstance(400)
	_, big := solverTestInstance(1200)
	hardDS := workload.HardSets()["ΔA→B→C"]
	hardTab := workload.RandomTable(hardDS.Schema(), 24, 3, rand.New(rand.NewSource(7)))
	return []Request{
		{FDs: ds, Table: small, Algorithm: AlgoOptimalSRepair},
		{FDs: ds, Table: big, Algorithm: AlgoOptimalSRepair},
		{FDs: hardDS, Table: hardTab, Algorithm: AlgoExactSRepair},
		{FDs: ds, Table: mid, Algorithm: AlgoOptimalURepair},
		{FDs: hardDS, Table: hardTab, Algorithm: AlgoApproxSRepair},
		{FDs: ds, Table: mid, Algorithm: AlgoOptimalSRepair},
	}
}

// soloResults runs every request alone on a fresh serial Solver — the
// reference SolveBatch must match byte for byte.
func soloResults(t *testing.T, reqs []Request) []BatchResult {
	t.Helper()
	out := make([]BatchResult, len(reqs))
	for i, r := range reqs {
		sv := NewSolver()
		switch r.Algorithm {
		case AlgoOptimalSRepair:
			tab, cost, err := sv.OptimalSRepair(r.FDs, r.Table)
			out[i] = BatchResult{Index: i, Table: tab, Cost: cost, Err: err}
		case AlgoExactSRepair:
			tab, cost, err := sv.ExactSRepair(r.FDs, r.Table)
			out[i] = BatchResult{Index: i, Table: tab, Cost: cost, Err: err}
		case AlgoApproxSRepair:
			tab, cost, err := sv.ApproxSRepair(r.FDs, r.Table)
			out[i] = BatchResult{Index: i, Table: tab, Cost: cost, Err: err}
		case AlgoOptimalURepair:
			ur, err := sv.OptimalURepair(r.FDs, r.Table)
			out[i] = BatchResult{Index: i, Err: err}
			if err == nil {
				out[i].Table, out[i].Cost = ur.Update, ur.Cost
			}
		default:
			t.Fatalf("solo harness: unhandled algorithm %v", r.Algorithm)
		}
		if out[i].Err != nil {
			t.Fatalf("solo request %d (%v): %v", i, r.Algorithm, out[i].Err)
		}
	}
	return out
}

// TestSolveBatchMatchesSolo: batch results are index-aligned and
// byte-identical to sequential solo solves at every worker count.
func TestSolveBatchMatchesSolo(t *testing.T) {
	reqs := batchTestRequests()
	want := soloResults(t, reqs)
	for _, workers := range []int{1, 2, 4, 8} {
		sv := NewSolver(WithParallelism(workers))
		// Two rounds on one Solver: the second round exercises warm
		// arenas and proves scope hygiene across batches.
		for round := 0; round < 2; round++ {
			got := sv.SolveBatch(reqs)
			if len(got) != len(reqs) {
				t.Fatalf("workers=%d: %d results for %d requests", workers, len(got), len(reqs))
			}
			for i, g := range got {
				if g.Err != nil {
					t.Fatalf("workers=%d round=%d request %d: %v", workers, round, i, g.Err)
				}
				if g.Index != i {
					t.Fatalf("workers=%d: result %d carries index %d", workers, i, g.Index)
				}
				if g.Cost != want[i].Cost {
					t.Fatalf("workers=%d request %d: cost %v != %v", workers, i, g.Cost, want[i].Cost)
				}
				sameRepair(t, want[i].Table, g.Table)
			}
		}
	}
}

// TestSolveBatchRequestIsolation: one request with an already-expired
// deadline inside a batch of valid requests — the expired one returns
// context.DeadlineExceeded, the rest complete byte-identical to solo
// solves. Exercised serial and scheduled.
func TestSolveBatchRequestIsolation(t *testing.T) {
	ds, tab := solverTestInstance(400)
	want, wantCost, err := NewSolver().OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	for _, workers := range []int{1, 4} {
		sv := NewSolver(WithParallelism(workers))
		got := sv.SolveBatch([]Request{
			{FDs: ds, Table: tab},
			{FDs: ds, Table: tab, Context: expired},
			{FDs: ds, Table: tab},
		})
		if !errors.Is(got[1].Err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: expired request err = %v", workers, got[1].Err)
		}
		for _, i := range []int{0, 2} {
			if got[i].Err != nil {
				t.Fatalf("workers=%d: healthy request %d poisoned: %v", workers, i, got[i].Err)
			}
			if got[i].Cost != wantCost {
				t.Fatalf("workers=%d: request %d cost %v != %v", workers, i, got[i].Cost, wantCost)
			}
			sameRepair(t, want, got[i].Table)
		}
	}
}

// TestSolveBatchNilRequestIsolated: a malformed request (nil Table or
// FDs) becomes a per-request error at every worker count — it must not
// panic the batch via the scheduler's size callback.
func TestSolveBatchNilRequestIsolated(t *testing.T) {
	ds, tab := solverTestInstance(200)
	for _, workers := range []int{1, 2} {
		sv := NewSolver(WithParallelism(workers))
		got := sv.SolveBatch([]Request{
			{FDs: ds, Table: tab},
			{FDs: ds, Table: nil},
			{FDs: nil, Table: tab},
		})
		if got[0].Err != nil {
			t.Fatalf("workers=%d: healthy request: %v", workers, got[0].Err)
		}
		for _, i := range []int{1, 2} {
			if got[i].Err == nil {
				t.Fatalf("workers=%d: malformed request %d returned no error", workers, i)
			}
		}
	}
}

// TestSolveBatchRequestTimeout: WithRequestTimeout bounds each request
// individually — a deadline far too short for the big request leaves
// its small batch siblings untouched.
func TestSolveBatchRequestTimeout(t *testing.T) {
	ds, small := solverTestInstance(50)
	_, big := solverTestInstance(20000)
	sv := NewSolver(WithParallelism(2))
	got := sv.SolveBatch([]Request{
		{FDs: ds, Table: small},
		{FDs: ds, Table: big},
		{FDs: ds, Table: small},
	}, WithRequestTimeout(time.Nanosecond))
	// Every request shares the same tiny deadline; at n=20000 the solve
	// cannot finish within a nanosecond.
	if !errors.Is(got[1].Err, context.DeadlineExceeded) {
		t.Fatalf("big request err = %v, want deadline exceeded", got[1].Err)
	}
	// A generous per-request deadline lets everything finish.
	got = sv.SolveBatch([]Request{
		{FDs: ds, Table: small},
		{FDs: ds, Table: small},
	}, WithRequestTimeout(time.Minute))
	for i, g := range got {
		if g.Err != nil {
			t.Fatalf("request %d with generous timeout: %v", i, g.Err)
		}
	}
}

// TestSolveBatchPerRequestStats: each result carries its own counter
// slice and the solver aggregate accumulates all of them.
func TestSolveBatchPerRequestStats(t *testing.T) {
	ds, t1 := solverTestInstance(200)
	_, t2 := solverTestInstance(600)
	sv := NewSolver(WithStats())
	got := sv.SolveBatch([]Request{
		{FDs: ds, Table: t1},
		{FDs: ds, Table: t2},
	})
	var sum int64
	for i, g := range got {
		if g.Err != nil {
			t.Fatalf("request %d: %v", i, g.Err)
		}
		if g.Stats.Nodes <= 0 {
			t.Fatalf("request %d has no per-request stats: %+v", i, g.Stats)
		}
		sum += g.Stats.Nodes
	}
	if got[0].Stats.Nodes >= got[1].Stats.Nodes {
		t.Fatalf("bigger table should visit more nodes: %d vs %d",
			got[0].Stats.Nodes, got[1].Stats.Nodes)
	}
	if agg := sv.Stats().Nodes; agg != sum {
		t.Fatalf("aggregate nodes %d != sum of per-request %d", agg, sum)
	}
}

// TestStreamDeliversAll: the queue form delivers exactly one result
// per submission, indices identify requests across completion
// reordering, and results match solo solves.
func TestStreamDeliversAll(t *testing.T) {
	ds, small := solverTestInstance(60)
	_, mid := solverTestInstance(400)
	tabs := []*Table{small, mid, small, mid, small, small, mid, small}
	want := make([]BatchResult, len(tabs))
	for i, tab := range tabs {
		rep, cost, err := NewSolver().OptimalSRepair(ds, tab)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = BatchResult{Table: rep, Cost: cost}
	}
	for _, workers := range []int{1, 4} {
		sv := NewSolver(WithParallelism(workers))
		st := sv.NewStream()
		var wg sync.WaitGroup
		seen := make([]bool, len(tabs))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for res := range st.Results() {
				if res.Err != nil {
					t.Errorf("workers=%d request %d: %v", workers, res.Index, res.Err)
					continue
				}
				if res.Index < 0 || res.Index >= len(seen) || seen[res.Index] {
					t.Errorf("workers=%d: bad or duplicate index %d", workers, res.Index)
					continue
				}
				seen[res.Index] = true
				if res.Cost != want[res.Index].Cost {
					t.Errorf("workers=%d request %d: cost %v != %v",
						workers, res.Index, res.Cost, want[res.Index].Cost)
				}
			}
		}()
		for i, tab := range tabs {
			got, err := st.Submit(Request{FDs: ds, Table: tab})
			if err != nil {
				t.Fatalf("workers=%d: Submit: %v", workers, err)
			}
			if got != i {
				t.Fatalf("workers=%d: Submit returned %d, want %d", workers, got, i)
			}
		}
		st.Close()
		wg.Wait()
		for i, ok := range seen {
			if !ok {
				t.Fatalf("workers=%d: request %d never delivered", workers, i)
			}
		}
	}
}

// TestStreamSubmitAfterClose pins the shutdown contract: Submit after
// Close returns ErrStreamClosed (it must not panic — a serving daemon
// races producers against drain), Close is idempotent, and Results
// still closes cleanly.
func TestStreamSubmitAfterClose(t *testing.T) {
	ds, tab := solverTestInstance(20)
	st := NewSolver().NewStream()
	st.Close()
	st.Close() // idempotent
	if _, err := st.Submit(Request{FDs: ds, Table: tab}); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrStreamClosed", err)
	}
	for range st.Results() {
		t.Fatal("unexpected result on an empty closed stream")
	}
}

// TestStreamSubmitCloseRace races concurrent producers against Close:
// every Submit either succeeds (its result must be delivered exactly
// once) or fails with ErrStreamClosed; nothing panics, every accepted
// request is accounted for, and indexes stay dense.
func TestStreamSubmitCloseRace(t *testing.T) {
	ds, tab := solverTestInstance(60)
	for _, workers := range []int{1, 4} {
		sv := NewSolver(WithParallelism(workers))
		st := sv.NewStream()

		var accepted atomic.Int64
		var rejected atomic.Int64
		var producers sync.WaitGroup
		for p := 0; p < 4; p++ {
			producers.Add(1)
			go func() {
				defer producers.Done()
				for k := 0; k < 8; k++ {
					if _, err := st.Submit(Request{FDs: ds, Table: tab}); err != nil {
						if !errors.Is(err, ErrStreamClosed) {
							t.Errorf("Submit: unexpected error %v", err)
						}
						rejected.Add(1)
						return
					}
					accepted.Add(1)
				}
			}()
		}
		// Close lands somewhere in the middle of the submissions.
		time.Sleep(time.Millisecond)
		st.Close()

		var delivered int64
		var consumer sync.WaitGroup
		consumer.Add(1)
		go func() {
			defer consumer.Done()
			for res := range st.Results() {
				if res.Err != nil {
					t.Errorf("request %d: %v", res.Index, res.Err)
				}
				delivered++
			}
		}()
		producers.Wait()
		consumer.Wait()
		if delivered != accepted.Load() {
			t.Fatalf("workers=%d: %d results delivered for %d accepted Submits (%d rejected)",
				workers, delivered, accepted.Load(), rejected.Load())
		}
	}
}

// measureSmallSolveBytes reports mean B/op of repeated small solves on
// sv, forcing the solver's sync.Pool arenas empty before every solve
// (two GCs clear both pool generations) so the measurement captures
// what a cold solve freshly allocates — exactly where sticky oversized
// hints used to bloat allocation. Measured by TotalAlloc deltas on a
// single goroutine rather than testing.Benchmark, which would scale
// its iteration count off the timed window and pay the untimed GCs
// millions of times.
func measureSmallSolveBytes(t *testing.T, sv *Solver, ds *FDSet, tab *Table) int64 {
	t.Helper()
	const iters = 10
	var before, after runtime.MemStats
	var total uint64
	for i := 0; i < iters; i++ {
		runtime.GC()
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, _, err := sv.OptimalSRepair(ds, tab); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		total += after.TotalAlloc - before.TotalAlloc
	}
	return int64(total / iters)
}

// TestStickyHintsRegression is the headline bugfix pin: on one reused
// Solver, a small solve after a 102400-row solve must allocate within
// 2× the B/op of the same small solve on a fresh Solver. Before
// per-request solve scopes, the reused solver kept the 102400-row hint
// forever and pre-sized every cold buffer at it (~MBs per small
// solve).
func TestStickyHintsRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 102400-row solve")
	}
	sc := MustSchema("R", "A", "B", "C")
	ds := MustFDs(sc, "A -> B", "B -> A", "B -> C")
	big := workload.MarriageSparseTable(sc, 102400, 3, 3, rand.New(rand.NewSource(102400)))
	small := workload.RandomTable(sc, 100, 12, rand.New(rand.NewSource(100)))

	fresh := NewSolver()
	freshBytes := measureSmallSolveBytes(t, fresh, ds, small)

	reused := NewSolver()
	if _, _, err := reused.OptimalSRepair(ds, big); err != nil {
		t.Fatal(err)
	}
	reusedBytes := measureSmallSolveBytes(t, reused, ds, small)

	t.Logf("small-solve B/op: fresh=%d reused-after-102400=%d", freshBytes, reusedBytes)
	// 2× plus a small absolute slack so a tiny denominator cannot turn
	// pool-timing noise into a failure; the bug this pins was a >100×
	// blowup (hundreds of KB → tens of MB).
	if reusedBytes > 2*freshBytes+64<<10 {
		t.Fatalf("sticky hints: small solve on reused solver allocates %d B/op, fresh %d B/op",
			reusedBytes, freshBytes)
	}
}

// TestSetParallelismShimConcurrentWithSolves is the race audit of the
// deprecated default-context shim (fdrepair.SetParallelism; the old
// srepair.SetWorkers shim was already removed): reconfiguring the
// process default mid-solve must not corrupt a running solve. The swap
// is an atomic pointer store and in-flight solves keep the context
// they captured at entry, so this must be race-clean (run under
// -race) and every result must stay byte-identical.
func TestSetParallelismShimConcurrentWithSolves(t *testing.T) {
	defer SetParallelism(1)
	ds, tab := solverTestInstance(300)
	want, wantCost, err := NewSolver().OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var mutators sync.WaitGroup
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
				SetParallelism(n%4 + 1)
			}
		}
	}()
	var solvers sync.WaitGroup
	errs := make([]error, 8)
	for g := range errs {
		solvers.Add(1)
		go func() {
			defer solvers.Done()
			for iter := 0; iter < 5; iter++ {
				got, cost, err := OptimalSRepair(ds, tab) // default-context entry point
				if err != nil {
					errs[g] = err
					return
				}
				if cost != wantCost || got.Len() != want.Len() {
					errs[g] = errors.New("default-context solve diverged under concurrent SetParallelism")
					return
				}
			}
		}()
	}
	solvers.Wait()
	close(stop)
	mutators.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
