package fdrepair

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// assertNoGoroutineLeak polls until the process goroutine count returns
// to (near) the recorded baseline, then fails with a full stack dump if
// it never does. The +3 slack absorbs runtime/testing helpers, matching
// the chaos suite's convention.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+3 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestStreamSubmitCloseGoroutineLeak pins the Stream lifecycle: every
// per-request goroutine Submit spawns, and the drain goroutine Close
// spawns, must exit once results are consumed. A retained goroutine
// here is a per-request leak in a serving daemon.
func TestStreamSubmitCloseGoroutineLeak(t *testing.T) {
	ds, tab := solverTestInstance(120)
	baseline := runtime.NumGoroutine()

	sv := NewSolver(WithParallelism(4))
	st := sv.NewStream()
	const n = 16
	done := make(chan int)
	go func() {
		got := 0
		for res := range st.Results() {
			if res.Err != nil {
				t.Errorf("request %d: %v", res.Index, res.Err)
			}
			got++
		}
		done <- got
	}()
	for i := 0; i < n; i++ {
		if _, err := st.Submit(Request{FDs: ds, Table: tab}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	st.Close()
	if got := <-done; got != n {
		t.Fatalf("drained %d results, want %d", got, n)
	}
	// Submit after Close must refuse cleanly — and must not spawn the
	// request goroutine it refuses.
	if _, err := st.Submit(Request{FDs: ds, Table: tab}); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrStreamClosed", err)
	}
	if err := sv.Close(context.Background()); err != nil {
		t.Fatalf("Solver.Close: %v", err)
	}

	assertNoGoroutineLeak(t, baseline)
}

// TestStreamSlowConsumerGoroutineLeak covers the sharper edge: a
// consumer that arrives late. Request goroutines park on the full
// results buffer (holding their in-flight slot, which in turn blocks
// the producer's Submit — the stream's documented backpressure); once
// the consumer drains, everything must unwind — nothing may stay
// parked on the channel forever.
func TestStreamSlowConsumerGoroutineLeak(t *testing.T) {
	ds, tab := solverTestInstance(60)
	baseline := runtime.NumGoroutine()

	sv := NewSolver(WithParallelism(2))
	st := sv.NewStream()
	const n = 8
	submitted := make(chan struct{})
	go func() {
		defer close(submitted)
		for i := 0; i < n; i++ {
			if _, err := st.Submit(Request{FDs: ds, Table: tab}); err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
		}
		st.Close()
	}()
	// Give the early requests time to complete and park on the results
	// send (buffer = 2 slots at parallelism 2) before consuming.
	time.Sleep(50 * time.Millisecond)
	got := 0
	for range st.Results() {
		got++
	}
	<-submitted
	if got != n {
		t.Fatalf("drained %d results, want %d", got, n)
	}
	if err := sv.Close(context.Background()); err != nil {
		t.Fatalf("Solver.Close: %v", err)
	}

	assertNoGoroutineLeak(t, baseline)
}
