package fdrepair

import (
	"fmt"
	"slices"

	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
)

// Session is a resident repair handle binding one Solver, one table and
// one FD set for a long-running mutate/repair loop. It keeps the
// table's dictionary-encoding snapshot, the FD set's cached
// simplification chain, the top-level block partition and every block's
// previous repair result alive across solves, so Repair after a small
// mutation does incremental work:
//
//   - AppendRows and SetCells route through the table's incremental
//     mutators — new values are interned into the live dictionaries,
//     old columns are never re-encoded — and record which rows went
//     dirty;
//   - Repair re-partitions nothing (the block grouping is maintained by
//     the encoder), classifies each block as clean or dirty, re-solves
//     only the dirty ones as tasks on the solver's work-stealing
//     scheduler under a fresh per-request solve scope, and splices the
//     cached repairs of clean blocks into the combine step.
//
// The output is byte-identical to a from-scratch solve of the current
// table at every step. When the dirty fraction exceeds the fallback
// threshold (WithDirtyFallback), the FD set changes (SetFDs), or no
// previous solve exists, Repair runs all blocks — still seeding the
// block cache for the next round.
//
// A Session is a single-client handle: its methods must not be called
// concurrently (the underlying Solver remains safe for concurrent use
// by other sessions and one-shot solves). The session owns its table —
// callers must not mutate it behind the session's back.
type Session struct {
	sv *Solver
	ds *FDSet
	t  *Table

	bs        *srepair.BlockSolver // cached simplification chain (nil when not tractable)
	partAttrs schema.AttrSet       // projection defining the top-level blocks
	blocked   bool                 // false: trivial set, no block structure
	tractable bool                 // false: hard side of the dichotomy

	cleanN int    // rows [0, cleanN) existed at the last solve
	dirty  []bool // len cleanN; true = mutated since the last solve
	ndirty int    // count of set entries in dirty

	// Dirty bookkeeping for O(dirty + blocks) classification: the rows
	// marked dirty since the last solve, the partition codes they
	// carried when touched (a recoded row's former block is dirty too —
	// it lost a member), and the code-indexed dirty bitmap scratch.
	dirtyList []int32
	oldCodes  []int32
	codeDirty []bool

	// cache holds each block's last solved repair, indexed by the
	// block's first (minimum) row index. Rows never move, so the index
	// survives appends, cell updates and the encoder's internal
	// projection rebuilds; a hit (n > 0, length matches, no member
	// dirty) is valid because non-dirty rows never change equality
	// class, so such a block is identical to the one solved. A dense
	// slice rather than a map: Repair classifies every block every
	// round, and tens of thousands of map probes per solve showed up in
	// profiles.
	cache  []blockResult
	primed bool // cache holds a previous solve's blocks

	// memo caches the marriage combine's matching per connected
	// component, so a repair after a small mutation re-matches only the
	// components whose block weights changed. Correct to drop at any
	// time; reset with the cache on SetFDs.
	memo *srepair.MatchMemo

	fallbackFrac float64
	recordImpact bool

	stats      SessionStats
	lastImpact *Impact

	// Per-repair working buffers, recycled across Repair calls so a
	// steady mutate/repair loop does not re-allocate O(blocks) and
	// O(rows) scratch every round.
	repsBuf    [][]int32
	weightsBuf []float64
	solveBuf   []int
}

// blockResult is one cached block repair: the block length at solve
// time, the repair's row indices (ascending) and its total weight.
type blockResult struct {
	n   int
	rep []int32
	w   float64
}

// SessionStats describes the last Repair call and the session's
// cumulative solve accounting.
type SessionStats struct {
	Rows         int  // table length at the last Repair
	DirtyRows    int  // rows mutated or appended since the previous Repair
	Blocks       int  // blocks in the partition (0 for trivial sets)
	BlocksReused int  // clean blocks spliced from cache
	BlocksSolved int  // dirty blocks re-solved
	FullSolve    bool // the last Repair ran every block

	Repairs    int // cumulative Repair calls
	FullSolves int // cumulative Repairs that ran every block
}

// FDImpact is the violation count of one FD before and after a repair
// (tuples involved in at least one violation of that FD).
type FDImpact struct {
	FD            string
	Before, After int
}

// BlockImpact describes one block of the last repair: its first row
// index, size, how many rows the repair kept, the cells changed by
// deleting the rest (deleted rows × arity — an S-repair changes cells
// only by removing whole tuples), and whether the block repair was
// spliced from cache.
type BlockImpact struct {
	FirstRow     int
	Rows, Kept   int
	CellsChanged int
	Reused       bool
}

// Impact is the before/after report of one Repair call, recorded when
// the session was built WithImpactRecording. The fdrepair verify
// subcommand prints it.
type Impact struct {
	Violations []FDImpact
	Blocks     []BlockImpact
	Cost       float64
}

// SessionOption configures a Session under construction.
type SessionOption func(*Session)

// WithDirtyFallback sets the dirty-row fraction above which Repair
// abandons incremental splicing and re-solves every block (cache
// classification overhead is wasted when most blocks changed anyway).
// The default is 0.3; frac ≥ 1 never falls back, frac ≤ 0 falls back
// whenever anything is dirty (useful for debugging).
func WithDirtyFallback(frac float64) SessionOption {
	return func(s *Session) { s.fallbackFrac = frac }
}

// WithImpactRecording makes every Repair record an Impact report
// (per-FD violation counts before and after, per-block rows kept and
// cells changed), retrievable with LastImpact. Off by default: the
// after-side violation counts cost one encoding pass over the repaired
// table.
func WithImpactRecording() SessionOption {
	return func(s *Session) { s.recordImpact = true }
}

// NewSession builds a resident session over the solver, FD set and
// table. The table is owned by the session afterwards: all further
// mutation must go through Session.AppendRows / Session.SetCells.
func NewSession(sv *Solver, ds *FDSet, t *Table, opts ...SessionOption) (*Session, error) {
	if sv == nil {
		return nil, fmt.Errorf("fdrepair: nil solver")
	}
	if !ds.Schema().SameAs(t.Schema()) {
		return nil, fmt.Errorf("fdrepair: FD set and table have different schemas")
	}
	s := &Session{sv: sv, ds: ds, t: t, fallbackFrac: 0.3}
	for _, opt := range opts {
		opt(s)
	}
	s.bindFDs(ds)
	return s, nil
}

// bindFDs recomputes the chain-derived session state for a (new) FD
// set and drops every cached block repair.
func (s *Session) bindFDs(ds *FDSet) {
	s.ds = ds
	s.bs, s.tractable = srepair.NewBlockSolver(ds)
	if s.tractable {
		s.partAttrs, s.blocked = s.bs.TopStepAttrs()
	} else {
		s.partAttrs, s.blocked = 0, false
	}
	s.memo = srepair.NewMatchMemo()
	clear(s.cache)
	s.primed = false
	s.cleanN, s.ndirty = 0, 0
	s.dirty = s.dirty[:0]
	s.dirtyList = s.dirtyList[:0]
	s.oldCodes = s.oldCodes[:0]
}

// Table returns the session's live table. Read-only for callers:
// mutate through AppendRows / SetCells.
func (s *Session) Table() *Table { return s.t }

// FDs returns the session's current FD set.
func (s *Session) FDs() *FDSet { return s.ds }

// Stats returns the session's solve accounting (last Repair plus
// cumulative counters).
func (s *Session) Stats() SessionStats { return s.stats }

// LastImpact returns the impact report of the most recent Repair, or
// nil when none was recorded (impact recording off, or no Repair yet).
func (s *Session) LastImpact() *Impact { return s.lastImpact }

// AppendRows bulk-appends rows to the session's table (semantics of
// Table.AppendRows: consecutive fresh identifiers, nil weights mean 1,
// all-or-nothing validation) through the incremental encoder — only
// the new rows are interned. The new rows are dirty until the next
// Repair.
func (s *Session) AppendRows(tuples []Tuple, weights []float64) (int, error) {
	return s.t.AppendRowsIncremental(tuples, weights)
}

// SetCells applies cell updates to the session's table in place
// (later updates to the same cell win; all-or-nothing validation)
// through the incremental encoder, and marks the touched rows dirty.
func (s *Session) SetCells(updates []CellUpdate) error {
	// Capture the touched rows' partition codes before the recode: the
	// block a row leaves is as dirty as the one it joins, and after the
	// mutation the old label is gone. Invalid updates are filtered by
	// the mutator below; the capture is rolled back on error.
	mark := len(s.oldCodes)
	if s.blocked {
		codes, _ := s.t.ProjectionCodes(s.partAttrs)
		for _, u := range updates {
			if ri, ok := s.t.IndexOf(u.ID); ok && ri < len(codes) {
				s.oldCodes = append(s.oldCodes, codes[ri])
			}
		}
	}
	if err := s.t.SetCellsIncremental(updates); err != nil {
		s.oldCodes = s.oldCodes[:mark]
		return err
	}
	for _, u := range updates {
		ri, _ := s.t.IndexOf(u.ID)
		if ri < s.cleanN && !s.dirty[ri] {
			s.dirty[ri] = true
			s.dirtyList = append(s.dirtyList, int32(ri))
			s.ndirty++
		}
	}
	return nil
}

// SetFDs replaces the session's FD set. A set equal to the current one
// (same FD sequence over the same schema) is a no-op; otherwise the
// block partition derives from the new set's simplification chain, so
// every cached block repair is dropped and the next Repair runs full.
func (s *Session) SetFDs(ds *FDSet) error {
	if !ds.Schema().SameAs(s.t.Schema()) {
		return fmt.Errorf("fdrepair: FD set and table have different schemas")
	}
	if ds.EqualTo(s.ds) {
		s.ds = ds
		return nil
	}
	s.bindFDs(ds)
	return nil
}

// Repair computes an optimal S-repair of the session's current table
// and its dist_sub cost, byte-identical to
// Solver.OptimalSRepair(FDs(), Table()) — but re-solving only the
// blocks whose rows were appended or updated since the last Repair,
// splicing cached repairs for the rest. Returns ErrNoSimplification
// when the FD set is on the hard side of the dichotomy. On success the
// session's dirty set resets and the block cache is refreshed; on
// error (cancellation included) the session state is unchanged and
// Repair may be retried.
func (s *Session) Repair() (*Table, float64, error) {
	if err := s.sv.begin(); err != nil {
		return nil, 0, err
	}
	defer s.sv.end()
	if !s.tractable {
		return nil, 0, srepair.ErrNoSimplification
	}
	n := s.t.Len()
	dirtyRows := s.ndirty + (n - s.cleanN)
	if !s.blocked {
		// Trivial FD set: the table is its own optimal S-repair (what the
		// cold entry point returns before any block machinery).
		s.commit(0, dirtyRows, false)
		if s.recordImpact {
			vi := s.fdImpacts(s.t)
			for i := range vi {
				vi[i].After = vi[i].Before // trivial sets repair to the table itself
			}
			s.lastImpact = &Impact{Violations: vi}
		}
		return s.t, 0, nil
	}
	var before []FDImpact
	if s.recordImpact {
		before = s.fdImpacts(nil)
	}
	if n == 0 {
		s.commit(0, dirtyRows, false)
		rep := table.ViewOfRows(s.t, nil).Materialize()
		if s.recordImpact {
			s.lastImpact = &Impact{Violations: before, Cost: 0}
		}
		return rep, 0, nil
	}

	// One Repair = one solve scope, exactly like the cold entry point —
	// plus the session's live dictionary as the exact cardinality
	// source for scratch presizing.
	c := s.sv.ctx.BeginSolve()
	codes := s.t.DistinctEstimate()
	if codes > n {
		codes = n
	}
	c.SetHints(solve.Hints{Rows: n, Codes: codes, Cards: s.t.ProjectionCardinality})

	groups := s.t.RowGroups(s.partAttrs)
	full := dirtyRows > int(s.fallbackFrac*float64(n)) || !s.primed
	if len(s.cache) < n {
		if cap(s.cache) >= n {
			// Capacity beyond len is zeroed (blockResult holds a pointer,
			// so the allocation was cleared through its full capacity).
			s.cache = s.cache[:n]
		} else {
			// Headroom for a steady append workload: exact growth would
			// reallocate the whole O(rows) cache every round.
			nc := make([]blockResult, n, n+n/8)
			copy(nc, s.cache)
			s.cache = nc
		}
	}

	// Classify blocks; collect the indices to solve.
	if cap(s.repsBuf) < len(groups) {
		// Headroom: workloads that keep minting new blocks (fresh values,
		// appends) grow the partition a little every round, and exact
		// sizing would reallocate all three buffers each time.
		g := len(groups) + len(groups)/8
		s.repsBuf = make([][]int32, g)
		s.weightsBuf = make([]float64, g)
		s.solveBuf = make([]int, 0, g)
	}
	reps := s.repsBuf[:len(groups)]
	weights := s.weightsBuf[:len(groups)]
	solveIdx := s.solveBuf[:0]
	reused := 0
	if full {
		solveIdx = slices.Grow(solveIdx, len(groups))
		for gi := range groups {
			solveIdx = append(solveIdx, gi)
		}
	} else {
		// A block is dirty exactly when a dirty row lives in it now or
		// lived in it at the last solve; both directions are visible in
		// the partition codes of the dirty rows (current, plus the codes
		// captured before each recode), so classification costs
		// O(dirty + blocks), not a membership walk over every row.
		codes, bound := s.t.ProjectionCodes(s.partAttrs)
		if cap(s.codeDirty) < bound {
			s.codeDirty = make([]bool, bound+bound/8)
		}
		cd := s.codeDirty[:bound]
		clear(cd)
		for _, c := range s.oldCodes {
			if int(c) < bound {
				cd[c] = true
			}
		}
		for _, ri := range s.dirtyList {
			cd[codes[ri]] = true
		}
		for ri := s.cleanN; ri < n; ri++ {
			cd[codes[ri]] = true
		}
		for gi, g := range groups {
			if !cd[codes[g[0]]] {
				if cached := &s.cache[g[0]]; cached.n == len(g) {
					reps[gi], weights[gi] = cached.rep, cached.w
					reused++
					continue
				}
			}
			solveIdx = append(solveIdx, gi)
		}
	}

	// Solve the dirty blocks as tasks on the shared scheduler; each
	// block runs the same depth-1 recursion a cold solve's root fan-out
	// performs.
	err := c.ForEachBlock(len(solveIdx),
		func(i int) int { return len(groups[solveIdx[i]]) },
		func(wc *solve.Ctx, i int) error {
			gi := solveIdx[i]
			rep, err := s.bs.SolveBlock(wc, s.t, groups[gi])
			if err != nil {
				return err
			}
			reps[gi] = rep
			weights[gi] = srepair.BlockWeight(s.t, rep)
			return nil
		})
	if err != nil {
		return nil, 0, err
	}
	keep, err := s.bs.Combine(c, s.t, groups, reps, weights, s.memo)
	if err != nil {
		return nil, 0, err
	}
	rep := table.ViewOfRows(s.t, keep).Materialize()
	cost := s.costOf(keep)

	// Refresh the cache for the blocks actually solved; reused blocks'
	// entries are unchanged by definition of the classification.
	for _, gi := range solveIdx {
		g := groups[gi]
		s.cache[g[0]] = blockResult{n: len(g), rep: reps[gi], w: weights[gi]}
	}
	s.primed = true
	s.commit(len(groups), dirtyRows, len(solveIdx) == len(groups))
	s.stats.BlocksReused = reused
	s.stats.BlocksSolved = len(solveIdx)
	if s.recordImpact {
		s.recordBlockImpact(before, groups, reps, solveIdx, rep, cost)
	}
	return rep, cost, nil
}

// costOf is dist_sub(rep, t) over the keep set: the same iteration
// order and float additions as table.DistSub, without re-verifying the
// subset relation row by row. keep is ascending (a Combine result), so
// one merge walk finds the deleted rows.
func (s *Session) costOf(keep []int32) float64 {
	var sum float64
	k := 0
	for ri, r := range s.t.Rows() {
		if k < len(keep) && int(keep[k]) == ri {
			k++
			continue
		}
		sum += r.Weight
	}
	return sum
}

// commit resets the dirty set and refreshes the stats; called only on
// success (after the caller updated the block cache), so a failed
// Repair leaves the session retryable.
func (s *Session) commit(blocks, dirtyRows int, full bool) {
	n := s.t.Len()
	s.cleanN = n
	s.ndirty = 0
	s.dirtyList = s.dirtyList[:0]
	s.oldCodes = s.oldCodes[:0]
	if cap(s.dirty) < n {
		s.dirty = make([]bool, n)
	} else {
		s.dirty = s.dirty[:n]
		clear(s.dirty)
	}
	s.stats = SessionStats{
		Rows:       n,
		DirtyRows:  dirtyRows,
		Blocks:     blocks,
		FullSolve:  full,
		Repairs:    s.stats.Repairs + 1,
		FullSolves: s.stats.FullSolves,
	}
	if full {
		s.stats.FullSolves++
	}
}

// fdImpacts counts, per FD, the tuples involved in at least one
// violation. A nil argument means the session's table.
func (s *Session) fdImpacts(t *Table) []FDImpact {
	if t == nil {
		t = s.t
	}
	out := make([]FDImpact, s.ds.Len())
	for i := 0; i < s.ds.Len(); i++ {
		f := s.ds.FDAt(i)
		out[i] = FDImpact{FD: s.ds.FDString(f), Before: t.FDViolationTuples(f)}
	}
	return out
}

// recordBlockImpact fills LastImpact from this solve's bookkeeping.
func (s *Session) recordBlockImpact(before []FDImpact, groups, reps [][]int32, solveIdx []int, rep *Table, cost float64) {
	solved := make(map[int]bool, len(solveIdx))
	for _, gi := range solveIdx {
		solved[gi] = true
	}
	arity := s.t.Schema().Arity()
	im := &Impact{Violations: before, Cost: cost}
	// Kept rows per block: every kept row lies in exactly one block of
	// the partition, and CombineBlocks either keeps a block's repair
	// verbatim or drops the block entirely, so membership of the first
	// repair row decides the whole block.
	keptIn := make([]bool, s.t.Len())
	for _, r := range rep.Rows() {
		ri, _ := s.t.IndexOf(r.ID)
		keptIn[ri] = true
	}
	for gi, g := range groups {
		kept := 0
		if len(reps[gi]) > 0 && keptIn[reps[gi][0]] {
			kept = len(reps[gi])
		}
		im.Blocks = append(im.Blocks, BlockImpact{
			FirstRow:     int(g[0]),
			Rows:         len(g),
			Kept:         kept,
			CellsChanged: (len(g) - kept) * arity,
			Reused:       !solved[gi],
		})
	}
	for i := range im.Violations {
		im.Violations[i].After = rep.FDViolationTuples(s.ds.FDAt(i))
	}
	s.lastImpact = im
}
