package fdrepair

import (
	"math/big"

	"repro/internal/enumerate"
	"repro/internal/table"
	"repro/internal/urepair"
)

// This file exposes the library's extensions beyond the paper's core
// results: repair counting/enumeration (the chain-FD-set counting
// connection of Section 2.2) and the Section-5 repair-model variations
// (active-domain-restricted updates and mixed deletion/update repairs).

// CountSRepairs counts the subset repairs (maximal consistent subsets)
// of t under ds. For chain FD sets — exactly the polynomial-time
// countable class (Livshits & Kimelfeld 2017, cited in Section 2.2) —
// counting is polynomial; otherwise the count is obtained by bounded
// enumeration.
func CountSRepairs(ds *FDSet, t *Table) (*big.Int, error) {
	return enumerate.Count(ds, t)
}

// SubsetRepairs enumerates subset repairs, returning at most limit of
// them (limit ≤ 0: all) together with the total count.
func SubsetRepairs(ds *FDSet, t *Table, limit int) ([]*Table, int, error) {
	return enumerate.SubsetRepairs(ds, t, limit)
}

// RestrictedURepair computes an optimal U-repair under the Section-5
// restriction that updates may only use values from the active domain
// (no fresh constants). Exhaustive; tiny instances only.
func RestrictedURepair(ds *FDSet, t *Table) (*Table, float64, error) {
	return urepair.ExactActiveDomain(ds, t)
}

// MixedRepair computes an optimal mixed repair (Section 5): tuples may
// be deleted at deleteFactor × weight or have cells updated at weight
// per cell. Returns the updated table, the set of deleted tuple ids,
// and the total cost. Exhaustive; tiny instances only.
func MixedRepair(ds *FDSet, t *Table, deleteFactor float64) (*Table, map[int]bool, float64, error) {
	return urepair.ExactMixed(ds, t, deleteFactor)
}

// DiffRepair summarizes how a repair differs from the original table:
// deleted tuples and changed cells, renderable for human review.
func DiffRepair(original, repaired *Table) (*table.Diff, error) {
	return table.DiffTables(original, repaired)
}
