package fdrepair

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/solve/failpoint"
)

// TestSolveBatchPanicIsolation: with a one-shot panic failpoint armed
// mid-recursion, exactly one request of a batch fails with a
// *PanicError (stack attached, panic counted in SolveStats) while
// every sibling completes byte-identical to its solo solve — at
// workers 1 and 4, twice per solver to prove the scheduler survives.
func TestSolveBatchPanicIsolation(t *testing.T) {
	defer failpoint.DisableAll()
	ds, small := solverTestInstance(200)
	_, mid := solverTestInstance(400)
	_, big := solverTestInstance(800)
	reqs := []Request{
		{FDs: ds, Table: small},
		{FDs: ds, Table: mid},
		{FDs: ds, Table: big},
		{FDs: ds, Table: mid},
	}
	want := soloResults(t, reqs)

	for _, workers := range []int{1, 4} {
		sv := NewSolver(WithParallelism(workers), WithStats())
		// After:10 lands the fire well inside some request's block
		// recursion (depth > 1 for these instances), not at its entry.
		failpoint.Enable(failpoint.PanicInBlock, failpoint.Spec{After: 10, Count: 1})
		got := sv.SolveBatch(reqs)
		failpoint.DisableAll()

		panicked := 0
		for i, g := range got {
			if g.Err != nil {
				var pe *PanicError
				if !errors.As(g.Err, &pe) {
					t.Fatalf("workers=%d request %d: err = %v, want *PanicError", workers, i, g.Err)
				}
				panicked++
				continue
			}
			if g.Cost != want[i].Cost {
				t.Fatalf("workers=%d request %d: cost %v != solo %v", workers, i, g.Cost, want[i].Cost)
			}
			sameRepair(t, want[i].Table, g.Table)
		}
		if panicked != 1 {
			t.Fatalf("workers=%d: %d requests panicked, want exactly 1", workers, panicked)
		}
		if sv.Stats().Panics < 1 {
			t.Fatalf("workers=%d: aggregate Panics = %d, want ≥ 1", workers, sv.Stats().Panics)
		}
		// The same solver must serve a clean batch afterwards.
		for i, g := range sv.SolveBatch(reqs) {
			if g.Err != nil {
				t.Fatalf("workers=%d post-panic request %d: %v", workers, i, g.Err)
			}
			sameRepair(t, want[i].Table, g.Table)
		}
	}
}

// TestRequestDeadlineComposition: WithRequestTimeout and
// Request.Context compose to the earliest deadline in both orders, and
// an already-expired context inside a healthy batch fails only its own
// request. The slow-block failpoint stalls dispatches so the solve
// reliably outlives the short deadline.
func TestRequestDeadlineComposition(t *testing.T) {
	defer failpoint.DisableAll()
	ds, tab := solverTestInstance(800)

	run := func(reqCtx context.Context, timeout time.Duration) (BatchResult, time.Duration) {
		failpoint.Enable(failpoint.SlowBlock, failpoint.Spec{Sleep: 2 * time.Millisecond})
		defer failpoint.DisableAll()
		sv := NewSolver()
		start := time.Now()
		res := sv.SolveBatch(
			[]Request{{FDs: ds, Table: tab, Context: reqCtx}},
			WithRequestTimeout(timeout),
		)[0]
		return res, time.Since(start)
	}

	// Order A: the request context's 30ms deadline is earlier than the
	// 10s batch timeout.
	ctxA, cancelA := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancelA()
	resA, elapsedA := run(ctxA, 10*time.Second)
	if !errors.Is(resA.Err, context.DeadlineExceeded) {
		t.Fatalf("context-earlier: err = %v, want DeadlineExceeded", resA.Err)
	}
	if elapsedA > 5*time.Second {
		t.Fatalf("context-earlier: took %v; the later timeout won", elapsedA)
	}

	// Order B: the 30ms batch timeout is earlier than the context's 10s
	// deadline.
	ctxB, cancelB := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelB()
	resB, elapsedB := run(ctxB, 30*time.Millisecond)
	if !errors.Is(resB.Err, context.DeadlineExceeded) {
		t.Fatalf("timeout-earlier: err = %v, want DeadlineExceeded", resB.Err)
	}
	if elapsedB > 5*time.Second {
		t.Fatalf("timeout-earlier: took %v; the later context deadline won", elapsedB)
	}

	// An already-expired request context inside a healthy batch: the
	// expired request fails alone, siblings complete — with the batch
	// timeout still armed (the regression is the composition path).
	want, wantCost, err := NewSolver().OptimalSRepair(ds, tab)
	if err != nil {
		t.Fatal(err)
	}
	expired, cancelE := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancelE()
	for _, workers := range []int{1, 4} {
		sv := NewSolver(WithParallelism(workers))
		got := sv.SolveBatch([]Request{
			{FDs: ds, Table: tab},
			{FDs: ds, Table: tab, Context: expired},
			{FDs: ds, Table: tab},
		}, WithRequestTimeout(10*time.Second))
		if !errors.Is(got[1].Err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: expired request err = %v", workers, got[1].Err)
		}
		for _, i := range []int{0, 2} {
			if got[i].Err != nil {
				t.Fatalf("workers=%d: healthy request %d: %v", workers, i, got[i].Err)
			}
			if got[i].Cost != wantCost {
				t.Fatalf("workers=%d: healthy request %d cost %v != %v", workers, i, got[i].Cost, wantCost)
			}
			sameRepair(t, want, got[i].Table)
		}
	}
}

// TestApproxFallback: an exact solve whose WithApproxFallback budget
// expires degrades to the 2-approximation (Degraded set, result
// byte-identical to AlgoApproxSRepair solo); a generous budget leaves
// the exact result untouched; an expired request deadline still fails
// rather than degrade.
func TestApproxFallback(t *testing.T) {
	// Small instance: the exact baseline is exponential and the
	// generous-budget case must actually finish it.
	ds, tab := solverTestInstance(24)

	wantApprox := NewSolver().SolveBatch([]Request{{FDs: ds, Table: tab, Algorithm: AlgoApproxSRepair}})[0]
	if wantApprox.Err != nil {
		t.Fatal(wantApprox.Err)
	}
	wantExact := NewSolver().SolveBatch([]Request{{FDs: ds, Table: tab, Algorithm: AlgoExactSRepair}})[0]
	if wantExact.Err != nil {
		t.Fatal(wantExact.Err)
	}

	for _, workers := range []int{1, 4} {
		sv := NewSolver(WithParallelism(workers))

		// 1ns budget: the exact sub-scope is born expired, so the
		// fallback always triggers, deterministically.
		res := sv.SolveBatch(
			[]Request{{FDs: ds, Table: tab, Algorithm: AlgoExactSRepair}},
			WithApproxFallback(time.Nanosecond), WithRequestTimeout(time.Minute),
		)[0]
		if res.Err != nil {
			t.Fatalf("workers=%d: degraded request err = %v", workers, res.Err)
		}
		if !res.Degraded {
			t.Fatalf("workers=%d: fallback did not mark Degraded", workers)
		}
		if res.Cost != wantApprox.Cost {
			t.Fatalf("workers=%d: degraded cost %v != approx solo %v", workers, res.Cost, wantApprox.Cost)
		}
		sameRepair(t, wantApprox.Table, res.Table)

		// Generous budget: exact completes, no degradation.
		res = sv.SolveBatch(
			[]Request{{FDs: ds, Table: tab, Algorithm: AlgoExactSRepair}},
			WithApproxFallback(time.Minute),
		)[0]
		if res.Err != nil || res.Degraded {
			t.Fatalf("workers=%d: healthy exact: err=%v degraded=%v", workers, res.Err, res.Degraded)
		}
		if res.Cost != wantExact.Cost {
			t.Fatalf("workers=%d: exact cost %v != %v", workers, res.Cost, wantExact.Cost)
		}

		// Expired request deadline: fail, never degrade — the client is
		// gone either way.
		expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
		res = sv.SolveBatch(
			[]Request{{FDs: ds, Table: tab, Algorithm: AlgoExactSRepair, Context: expired}},
			WithApproxFallback(time.Nanosecond),
		)[0]
		cancel()
		if !errors.Is(res.Err, context.DeadlineExceeded) || res.Degraded {
			t.Fatalf("workers=%d: expired request: err=%v degraded=%v", workers, res.Err, res.Degraded)
		}
	}
}

// TestSolverClose: Close refuses new work with ErrSolverClosed across
// every entry point, waits for in-flight solves, is idempotent, and
// honors its own deadline when the drain outlives it.
func TestSolverClose(t *testing.T) {
	defer failpoint.DisableAll()
	ds, tab := solverTestInstance(400)

	sv := NewSolver(WithParallelism(2))
	var solveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, solveErr = sv.OptimalSRepair(ds, tab)
	}()
	// Close must wait for the in-flight solve and then report a clean
	// quiesce.
	time.Sleep(time.Millisecond)
	if err := sv.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if solveErr != nil {
		t.Fatalf("in-flight solve during Close: %v", solveErr)
	}

	// Every entry point refuses now.
	if _, _, err := sv.OptimalSRepair(ds, tab); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("OptimalSRepair after Close: %v", err)
	}
	if _, err := sv.OptimalURepair(ds, tab); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("OptimalURepair after Close: %v", err)
	}
	for _, res := range sv.SolveBatch([]Request{{FDs: ds, Table: tab}}) {
		if !errors.Is(res.Err, ErrSolverClosed) {
			t.Fatalf("SolveBatch after Close: %v", res.Err)
		}
	}
	if _, err := sv.NewStream().Submit(Request{FDs: ds, Table: tab}); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("Stream.Submit after Close: %v", err)
	}
	if err := sv.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// A Close whose context expires before a stalled solve drains
	// returns the context error (the straggler finishes on its own).
	failpoint.Enable(failpoint.SlowBlock, failpoint.Spec{Sleep: 5 * time.Millisecond})
	_, smallTab := solverTestInstance(100)
	slow := NewSolver()
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = slow.OptimalSRepair(ds, smallTab)
	}()
	for i := 0; failpoint.Fires(failpoint.SlowBlock) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := slow.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close with expired budget: %v", err)
	}
	wg.Wait()
}
