package fdrepair

import (
	"repro/internal/denial"
)

// DenialConstraint is a binary denial constraint, generalizing FDs with
// order comparisons (Section 5 future work, direction 1): a conjunction
// of atoms over two tuple variables that no pair of tuples may satisfy.
type DenialConstraint = denial.Constraint

// ParseDenial parses a constraint such as
// "t1.rank < t2.rank & t1.salary > t2.salary".
func ParseDenial(sc *Schema, spec string) (*DenialConstraint, error) {
	return denial.Parse(sc, spec)
}

// FDsAsDenial translates an FD set into equivalent denial constraints.
func FDsAsDenial(ds *FDSet) ([]*DenialConstraint, error) {
	return denial.FromFDSet(ds)
}

// DenialSatisfies reports whether the table violates none of the
// constraints.
func DenialSatisfies(cs []*DenialConstraint, t *Table) bool {
	return denial.Satisfies(cs, t)
}

// ExactDenialSRepair computes an optimal S-repair under binary denial
// constraints (exponential baseline; APX-hard already for FDs).
func ExactDenialSRepair(cs []*DenialConstraint, t *Table) (*Table, float64, error) {
	s, err := denial.ExactSRepair(cs, t)
	if err != nil {
		return nil, 0, err
	}
	return s, DistSub(s, t), nil
}

// ApproxDenialSRepair computes a 2-optimal S-repair in polynomial time
// (Proposition 3.3 carries over to binary denial constraints).
func ApproxDenialSRepair(cs []*DenialConstraint, t *Table) (*Table, float64, error) {
	s, err := denial.Approx2SRepair(cs, t)
	if err != nil {
		return nil, 0, err
	}
	return s, DistSub(s, t), nil
}

// ExactDenialSRepair is the Solver-scoped ExactDenialSRepair: conflicts
// are found on the encoded engine (per-column compiled keys, constraint
// units fanned across the solver's workers) and the branch-and-bound
// cover search honors the solver's deadline.
func (sv *Solver) ExactDenialSRepair(cs []*DenialConstraint, t *Table) (*Table, float64, error) {
	if err := sv.begin(); err != nil {
		return nil, 0, err
	}
	defer sv.end()
	s, err := denial.ExactSRepairCtx(sv.ctx, cs, t)
	if err != nil {
		return nil, 0, err
	}
	return s, DistSub(s, t), nil
}

// ApproxDenialSRepair is the Solver-scoped ApproxDenialSRepair on the
// encoded engine: values parse once per cell instead of once per
// compared pair, and equality atoms prune the pair scan to join groups.
func (sv *Solver) ApproxDenialSRepair(cs []*DenialConstraint, t *Table) (*Table, float64, error) {
	if err := sv.begin(); err != nil {
		return nil, 0, err
	}
	defer sv.end()
	s, err := denial.Approx2SRepairCtx(sv.ctx, cs, t)
	if err != nil {
		return nil, 0, err
	}
	return s, DistSub(s, t), nil
}
