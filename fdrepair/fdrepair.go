package fdrepair

import (
	"fmt"
	"strings"

	"repro/internal/fd"
	"repro/internal/mpd"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
)

// Schema is a relation schema R(A1, ..., Ak).
type Schema = schema.Schema

// AttrSet is a set of attribute positions of a schema.
type AttrSet = schema.AttrSet

// FD is a functional dependency X → Y.
type FD = fd.FD

// FDSet is a set of functional dependencies over a schema.
type FDSet = fd.Set

// Table is a weighted table with tuple identifiers.
type Table = table.Table

// Tuple is a sequence of attribute values.
type Tuple = table.Tuple

// CellUpdate is one cell assignment for Session.SetCells.
type CellUpdate = table.CellUpdate

// URepairResult reports an update repair, its cost, and its guarantee.
type URepairResult = urepair.Result

// NewSchema constructs a schema; see schema.New.
func NewSchema(name string, attrs ...string) (*Schema, error) { return schema.New(name, attrs...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(name string, attrs ...string) *Schema { return schema.MustNew(name, attrs...) }

// ParseFDs parses FD specs of the form "A B -> C" into an FD set.
func ParseFDs(sc *Schema, specs ...string) (*FDSet, error) { return fd.ParseSet(sc, specs...) }

// MustFDs is ParseFDs that panics on error.
func MustFDs(sc *Schema, specs ...string) *FDSet { return fd.MustParseSet(sc, specs...) }

// NewTable returns an empty table over the schema.
func NewTable(sc *Schema) *Table { return table.New(sc) }

// DistSub is dist_sub(s, t): the weight of tuples of t missing from s.
func DistSub(s, t *Table) float64 { return table.DistSub(s, t) }

// DistUpd is dist_upd(u, t): the weighted Hamming distance.
func DistUpd(u, t *Table) float64 { return table.DistUpd(u, t) }

// Classification summarizes what the dichotomy of Theorem 3.4 (and the
// U-repair results of Section 4) say about an FD set.
type Classification struct {
	// SRepairPolyTime reports whether OptSRepair succeeds (Algorithm 2);
	// equivalently, whether computing an optimal S-repair — and solving
	// MPD (Theorem 3.10) — is polynomial-time. When false, the problem
	// is APX-complete.
	SRepairPolyTime bool
	// Trace is the chain of simplifications in the style of Example 3.5.
	Trace []string
	// HardClass names the Figure-2 class and Table-1 base set witnessing
	// APX-hardness (empty when SRepairPolyTime).
	HardClass string
	// URepairExact reports whether the U-repair planner solves the set
	// exactly (a sufficient condition per Section 4; the full U-repair
	// dichotomy is open).
	URepairExact bool
}

// Classify runs the dichotomy test and the U-repair planner's case
// analysis on the FD set.
func Classify(ds *FDSet) Classification {
	steps, ok := srepair.Trace(ds)
	out := Classification{SRepairPolyTime: ok}
	for _, st := range steps {
		out.Trace = append(out.Trace, st.Describe())
	}
	if !ok {
		// Re-run the simplifications to reach the stuck set, classify it.
		cur := ds
		for {
			st, more := cur.NextSimplification()
			if !more {
				break
			}
			cur = st.After
		}
		if cl, err := cur.Canonical().ClassifyNonSimplifiable(); err == nil {
			out.HardClass = fmt.Sprintf("%v (reduce from %s)", cl.Class, cl.Class.BaseSet())
		}
	}
	out.URepairExact = urepairExact(ds)
	return out
}

// urepairExact mirrors the planner's case analysis without touching
// data: consensus attributes are removable (Theorem 4.3), components
// are independent (Theorem 4.1), and a component is exact when it is a
// key swap (Proposition 4.9) or has a common lhs and passes
// OSRSucceeds (Corollary 4.6).
func urepairExact(ds *FDSet) bool {
	rest := ds.Minus(ds.ConsensusAttrs())
	for _, comp := range rest.Components() {
		if comp.IsTrivialSet() {
			continue
		}
		can := comp.Canonical()
		isSwap := func() bool {
			if can.Len() != 2 {
				return false
			}
			f1, f2 := can.FDs()[0], can.FDs()[1]
			return f1.LHS.Len() == 1 && f2.LHS.Len() == 1 &&
				f1.LHS == f2.RHS && f2.LHS == f1.RHS && f1.LHS != f2.LHS
		}
		if isSwap() {
			continue
		}
		if !comp.CommonLHS().IsEmpty() && srepair.OSRSucceeds(comp) {
			continue
		}
		return false
	}
	return true
}

// SetParallelism configures the worker budget of the default solver —
// the per-process Solver backing the package-level entry points
// (OptimalSRepair, OptimalURepair, MostProbableDatabase, ...). n ≤ 1
// restores the serial default. Results are identical to the serial
// algorithm.
//
// Calling SetParallelism concurrently with in-flight default-context
// solves is safe: the default context is swapped atomically and a
// running solve keeps the context (budget, scheduler, arenas) it
// captured at entry, so it completes unchanged — only solves started
// after the call see the new budget. Pinned by a -race regression test
// (TestSetParallelismShimConcurrentWithSolves).
//
// Deprecated: construct a Solver with WithParallelism instead — each
// Solver owns its worker budget, scratch arenas, deadline and stats,
// so independent solves no longer share process-wide state. This shim
// only reconfigures the default solver.
func SetParallelism(n int) { solve.SetDefaultWorkers(n) }

// Parallelism returns the default solver's worker budget (1 = serial).
//
// Deprecated: ask the Solver you configured (Solver.Parallelism).
func Parallelism() int { return solve.Default().Workers() }

// ErrNoSimplification is returned by the polynomial S-repair entry
// points (OptimalSRepair, Session.Repair) when the FD set cannot be
// reduced to a trivial set by the paper's three simplifications — the
// APX-hard side of the dichotomy. Fall back to ExactSRepair (small
// instances) or ApproxSRepair.
var ErrNoSimplification = srepair.ErrNoSimplification

// OptimalSRepair computes an optimal S-repair with the paper's
// polynomial algorithm (Algorithm 1). It fails with an error wrapping
// ErrNoSimplification when the FD set is on the hard side of the
// dichotomy; use ExactSRepair or ApproxSRepair then.
func OptimalSRepair(ds *FDSet, t *Table) (*Table, float64, error) {
	s, err := srepair.OptSRepair(ds, t)
	if err != nil {
		return nil, 0, err
	}
	return s, table.DistSub(s, t), nil
}

// ExactSRepair computes an optimal S-repair for any FD set via exact
// minimum-weight vertex cover on the conflict graph. Exponential in the
// worst case and size-limited; intended for baselines and validation.
func ExactSRepair(ds *FDSet, t *Table) (*Table, float64, error) {
	s, err := srepair.Exact(ds, t)
	if err != nil {
		return nil, 0, err
	}
	return s, table.DistSub(s, t), nil
}

// ApproxSRepair computes a 2-optimal S-repair in polynomial time for
// any FD set (Proposition 3.3).
func ApproxSRepair(ds *FDSet, t *Table) (*Table, float64, error) {
	s, err := srepair.Approx2(ds, t)
	if err != nil {
		return nil, 0, err
	}
	return s, table.DistSub(s, t), nil
}

// OptimalURepair runs the Section-4 planner: exact on the paper's
// tractable cases, combined approximation otherwise. Inspect
// Result.Exact and Result.RatioBound.
func OptimalURepair(ds *FDSet, t *Table) (URepairResult, error) {
	return urepair.Repair(ds, t)
}

// ExactURepair computes an optimal U-repair by exhaustive search on
// tiny instances (validation only).
func ExactURepair(ds *FDSet, t *Table) (*Table, float64, error) {
	return urepair.Exact(ds, t)
}

// MostProbableDatabase solves MPD (Section 3.4): tuple weights are read
// as independent probabilities in (0,1], and the most probable
// consistent subset is returned with its probability.
func MostProbableDatabase(ds *FDSet, t *Table) (*Table, float64, error) {
	s, err := mpd.Solve(ds, t)
	if err != nil {
		return nil, 0, err
	}
	return s, mpd.Probability(t, s), nil
}

// ExplainTrace renders a Classification's simplification chain like
// Example 3.5: "common lhs facility ⇛ consensus ∅ → city ⇛ ...".
func ExplainTrace(c Classification) string {
	if len(c.Trace) == 0 {
		if c.SRepairPolyTime {
			return "(already trivial)"
		}
		return "(no simplification applies)"
	}
	s := strings.Join(c.Trace, " ⇛ ")
	if c.SRepairPolyTime {
		return s + " ⇛ {}"
	}
	return s + " ⇛ STUCK"
}

// parseSingleFD parses one FD spec (helper shared by the CFD facade).
func parseSingleFD(sc *Schema, spec string) (FD, error) {
	return fd.Parse(sc, spec)
}
