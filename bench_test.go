// Benchmarks regenerating every table and figure of the paper (one
// benchmark per experiment of DESIGN.md §3) plus micro-benchmarks of
// the substrates. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/mpd"
	"repro/internal/reduction"
	"repro/internal/schema"
	"repro/internal/solve"
	"repro/internal/srepair"
	"repro/internal/table"
	"repro/internal/urepair"
	"repro/internal/workload"
)

var benchSink interface{}

// ---- E1: Figure 1 / running example ----

func BenchmarkFig1RunningExample(b *testing.B) {
	_, ds, t := workload.Office()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := srepair.OptSRepair(ds, t)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = s
	}
}

// ---- E2: Table 1 — exact vs 2-approx per hard FD set ----

func BenchmarkTable1HardSets(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C")
	sets := map[string]*fd.Set{
		"ΔA→B→C":    fd.MustParseSet(sc, "A -> B", "B -> C"),
		"ΔA→C←B":    fd.MustParseSet(sc, "A -> C", "B -> C"),
		"ΔAB→C→B":   fd.MustParseSet(sc, "A B -> C", "C -> B"),
		"ΔAB↔AC↔BC": fd.MustParseSet(sc, "A B -> C", "A C -> B", "B C -> A"),
	}
	for name, ds := range sets {
		tab := workload.RandomTable(sc, 28, 3, rand.New(rand.NewSource(2)))
		b.Run(name+"/exact", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := srepair.Exact(ds, tab)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = s
			}
		})
		b.Run(name+"/approx2", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := srepair.Approx2(ds, tab)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = s
			}
		})
	}
}

// ---- E3: dichotomy classification over the paper's catalogue ----

func BenchmarkDichotomyClassification(b *testing.B) {
	entries := workload.Catalogue()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, e := range entries {
			benchSink = srepair.OSRSucceeds(e.Set)
		}
	}
}

// ---- E4: Figure 2 five-class classification ----

func BenchmarkFig2Classification(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C", "D", "E")
	sets := []*fd.Set{
		fd.MustParseSet(sc, "A -> B", "C -> D"),
		fd.MustParseSet(sc, "A -> C D", "B -> C E"),
		fd.MustParseSet(sc, "A -> B C", "B -> D"),
		fd.MustParseSet(sc, "A B -> C", "A C -> B", "B C -> A"),
		fd.MustParseSet(sc, "A B -> C", "C -> A D"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, ds := range sets {
			cl, err := ds.ClassifyNonSimplifiable()
			if err != nil {
				b.Fatal(err)
			}
			benchSink = cl
		}
	}
}

// ---- E5: MPD via the Theorem 3.10 reduction ----

func BenchmarkMPDReduction(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "A -> C")
	rng := rand.New(rand.NewSource(5))
	base := workload.RandomTable(sc, 200, 12, rng)
	tab := table.New(sc)
	for _, r := range base.Rows() {
		tab.MustInsert(r.ID, r.Tuple, 0.05+0.9*rng.Float64())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := mpd.Solve(ds, tab)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = s
	}
}

// ---- E6: Theorem 4.10 vertex-cover gadget ----

func BenchmarkVCGadget(b *testing.B) {
	g := workload.RandomBoundedDegree(40, 3, 400, rand.New(rand.NewSource(7)))
	cover, err := coverOf(g)
	if err != nil {
		b.Fatal(err)
	}
	_, tab := reduction.VCUpdateGadget(g)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u, err := reduction.VCUpdateFromCover(g, tab, cover)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = u
	}
}

func coverOf(g *workload.SimpleGraph) (map[int]bool, error) {
	weights := make([]float64, g.N)
	for i := range weights {
		weights[i] = 1
	}
	wg, err := graph.NewGraph(weights)
	if err != nil {
		return nil, err
	}
	for _, e := range g.Edges {
		if err := wg.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return wg.ApproxVertexCoverBE(), nil
}

// ---- E7: Section 4.4 ratio table ----

func BenchmarkApproxRatioTable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := 1; k <= 6; k++ {
			dk := workload.DeltaK(k)
			if _, err := dk.MCI(); err != nil {
				b.Fatal(err)
			}
			if _, err := dk.MLC(); err != nil {
				b.Fatal(err)
			}
			dpk := workload.DeltaPrimeK(k)
			if _, err := dpk.MCI(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- E8: Corollary 4.5 S↔U transfer ----

func BenchmarkSURelation(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	tab := workload.RandomTable(sc, 120, 6, rand.New(rand.NewSource(9)))
	cover, _, ok := ds.MinLHSCover()
	if !ok {
		b.Fatal("no cover")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := srepair.Approx2(ds, tab)
		if err != nil {
			b.Fatal(err)
		}
		u := urepair.SubsetToUpdate(tab, s, cover)
		benchSink = urepair.UpdateToSubset(tab, u)
	}
}

// ---- E9: OptSRepair scaling (Theorem 3.2) ----

func BenchmarkOptSRepairScaling(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C")
	cases := map[string]*fd.Set{
		"chain":    fd.MustParseSet(sc, "A -> B", "A B -> C"),
		"marriage": fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C"),
	}
	for name, ds := range cases {
		for _, n := range []int{100, 400, 1600, 6400} {
			tab := workload.RandomTable(sc, n, n/10+2, rand.New(rand.NewSource(int64(n))))
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s, err := srepair.OptSRepair(ds, tab)
					if err != nil {
						b.Fatal(err)
					}
					benchSink = s
				}
			})
		}
	}
}

// ---- E9a: OptSRepair on the sparse-marriage shape ----
//
// Many distinct X1/X2 values with a handful of rows per block: the
// matching graph has ~n/3 nodes per side but only ~n/3 edges, the shape
// the sparse engine targets (a dense matcher pads it to a quadratic
// slack matrix).

func BenchmarkOptSRepairMarriageSparse(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> A", "B -> C")
	// The 102400 point rides the batched workload generation
	// (table.AppendRows): building the table is no longer the bottleneck.
	for _, n := range []int{400, 1600, 6400, 25600, 102400} {
		tab := workload.MarriageSparseTable(sc, n, 3, 3, rand.New(rand.NewSource(int64(n))))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := srepair.OptSRepair(ds, tab)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = s
			}
		})
	}
}

// ---- E9b: OptSRepair on the work-stealing task scheduler ----
//
// The workload has few, large blocks (8 common-lhs groups each solving
// an lhs marriage), the shape the scheduler is built for; tables with
// many tiny blocks run inline regardless of the worker count. On a
// multi-core box workers=4 should beat workers=1; on the repo's
// single-core bench box this measures scheduler overhead instead (see
// ROADMAP.md), and in CI it doubles as the deadlock/timeout smoke for
// the scaling workloads.

func BenchmarkOptSRepairParallel(b *testing.B) {
	sc := schema.MustNew("R", "D", "A", "B", "C")
	ds := fd.MustParseSet(sc, "D A -> B", "D B -> A", "D B -> C")
	rng := rand.New(rand.NewSource(6400))
	tab := table.New(sc)
	for i := 1; i <= 4800; i++ {
		tab.MustInsert(i, table.Tuple{
			fmt.Sprintf("d%d", rng.Intn(8)),
			fmt.Sprintf("a%d", rng.Intn(60)),
			fmt.Sprintf("b%d", rng.Intn(60)),
			fmt.Sprintf("c%d", rng.Intn(6)),
		}, 1)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := solve.New(workers, nil, nil)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := srepair.OptSRepairCtx(c, ds, tab)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = s
			}
		})
	}
}

// ---- E10: tractable U-repairs ----

func BenchmarkTractableURepair(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C")
	cases := map[string]*fd.Set{
		"common-lhs": fd.MustParseSet(sc, "A -> B", "A -> C"),
		"chain":      fd.MustParseSet(sc, "A -> B", "A B -> C"),
		"key-swap":   fd.MustParseSet(sc, "A -> B", "B -> A"),
		"consensus":  fd.MustParseSet(sc, "-> C", "A -> B"),
	}
	for name, ds := range cases {
		tab := workload.RandomTable(sc, 300, 8, rand.New(rand.NewSource(11)))
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := urepair.Repair(ds, tab)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Exact {
					b.Fatalf("%s must be exact", name)
				}
				benchSink = res
			}
		})
	}
}

// ---- E11: hardness gadgets ----

func BenchmarkHardnessGadgets(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	f := workload.RandomNonMixedCNF(5, 6, 2, rng)
	ti := workload.RandomTriangles(3, 3, 3, 9, rng)
	g := workload.RandomGNP(5, 0.5, rng)
	b.Run("nonmixed-sat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, tab, err := reduction.NonMixedSATGadget(f)
			if err != nil {
				b.Fatal(err)
			}
			s, err := srepair.Exact(ds, tab)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = s
		}
	})
	b.Run("triangles", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, tab := reduction.TriangleGadget(ti)
			s, err := srepair.Exact(ds, tab)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = s
		}
	})
	b.Run("vc-subset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, tab := reduction.VCSubsetGadget(g)
			s, err := srepair.Exact(ds, tab)
			if err != nil {
				b.Fatal(err)
			}
			benchSink = s
		}
	})
}

// ---- Full experiment reports (paperbench parity) ----

func BenchmarkPaperReports(b *testing.B) {
	for _, r := range experiments.All() {
		// E9 runs multi-second scaling sweeps; too slow for a bench loop.
		if r.ID == "E9" {
			continue
		}
		r := r
		b.Run(r.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := r.Run()
				if err != nil {
					b.Fatal(err)
				}
				benchSink = out
			}
		})
	}
}

// ---- Substrate micro-benchmarks ----

func BenchmarkClosure(b *testing.B) {
	ds := workload.DeltaK(6)
	x := ds.Schema().MustSet("A0", "A1", "A2", "A3", "A4", "A5", "A6")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = ds.Closure(x)
	}
}

func BenchmarkConflictGraph(b *testing.B) {
	sc := schema.MustNew("R", "A", "B", "C")
	ds := fd.MustParseSet(sc, "A -> B", "B -> C")
	tab := workload.RandomTable(sc, 400, 20, rand.New(rand.NewSource(15)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = tab.ConflictGraph(ds)
	}
}

func BenchmarkHungarianMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	const n = 60
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = float64(rng.Intn(1000))
		}
	}
	weight := func(i, j int) float64 { return w[i][j] }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, total, err := graph.MaxWeightBipartiteMatching(n, n, weight)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = total
	}
}

// BenchmarkMatchingScaling races the dense Hungarian against the sparse
// engine on identical sparse instances (~4 edges per left node) at
// growing n: the dense solver pays O(n³) on the padded matrix while the
// sparse solver pays O(V·E·log V) on the real edges, so the gap widens
// super-linearly with n.
func BenchmarkMatchingScaling(b *testing.B) {
	for _, n := range []int{60, 240, 960} {
		edges, weight := workload.SparseMatchingInstance(n, 4, 1000, rand.New(rand.NewSource(int64(17+n))))
		b.Run(fmt.Sprintf("hungarian/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, total, err := graph.MaxWeightBipartiteMatching(n, n, weight)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = total
			}
		})
		b.Run(fmt.Sprintf("sparse/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sm, err := graph.NewSparseMatcher(n, n, edges)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sm.Solve()
				if err != nil {
					b.Fatal(err)
				}
				benchSink = res.Total
			}
		})
	}
}

func BenchmarkVertexCoverBE(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	weights := make([]float64, 500)
	for i := range weights {
		weights[i] = 1 + float64(rng.Intn(9))
	}
	g := graph.MustNewGraph(weights)
	for i := 0; i < 2000; i++ {
		u, v := rng.Intn(500), rng.Intn(500)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = g.ApproxVertexCoverBE()
	}
}
