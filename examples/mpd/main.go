// Most Probable Database: probabilistic cleaning (Section 3.4). Sensor
// readings arrive with confidences; under the FD "a sensor has one
// location and one status", the most probable consistent world is the
// cleaned database (Theorem 3.10 reduces this to an optimal S-repair).
package main

import (
	"fmt"
	"log"

	"repro/fdrepair"
)

func main() {
	sc := fdrepair.MustSchema("Reading", "sensor", "location", "status")
	ds := fdrepair.MustFDs(sc, "sensor -> location", "sensor -> status")

	// Weights are independent tuple probabilities in (0, 1]; probability
	// 1 marks curated ground truth that any cleaned world must keep.
	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"s1", "roof", "ok"}, 0.95)
	t.MustInsert(2, fdrepair.Tuple{"s1", "roof", "fault"}, 0.60) // conflicting status
	t.MustInsert(3, fdrepair.Tuple{"s1", "basement", "ok"}, 0.55)
	t.MustInsert(4, fdrepair.Tuple{"s2", "lobby", "ok"}, 1.0) // certain
	t.MustInsert(5, fdrepair.Tuple{"s2", "garage", "ok"}, 0.98)
	t.MustInsert(6, fdrepair.Tuple{"s3", "atrium", "ok"}, 0.40) // below 0.5: never kept

	fmt.Println("probabilistic readings:")
	fmt.Print(t.String())

	info := fdrepair.Classify(ds)
	fmt.Printf("\nMPD complexity for this FD set: polynomial = %v (Theorem 3.10)\n\n", info.SRepairPolyTime)

	world, p, err := fdrepair.MostProbableDatabase(ds, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most probable consistent world (probability %.4g):\n%s", p, world.String())
	fmt.Println("\nnotes: the certain tuple 4 forces out tuple 5 despite p=0.98;")
	fmt.Println("tuple 6 (p ≤ 0.5) is dropped regardless of conflicts.")
}
