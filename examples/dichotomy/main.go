// Dichotomy explorer: classify every named FD set that appears in the
// paper (Examples 2.2, 3.1, 3.5, 3.8, 4.2, 4.7, Table 1) under both
// repair models, printing the simplification chain of Algorithm 2 and,
// for hard sets, the Figure-2 class witnessing APX-hardness.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/fdrepair"
	"repro/internal/workload"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "FD set\tsource\tS-repair\tU-repair\thard class")
	for _, entry := range workload.Catalogue() {
		info := fdrepair.Classify(entry.Set)
		sStatus := "APX-complete"
		if info.SRepairPolyTime {
			sStatus = "poly (OptSRepair)"
		}
		uStatus := "approx (Sec 4.4)"
		if info.URepairExact {
			uStatus = "poly (Sec 4 cases)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", entry.Name, entry.Source, sStatus, uStatus, info.HardClass)
	}
	tw.Flush()

	fmt.Println("\nsimplification chains (Example 3.5):")
	for _, entry := range workload.Catalogue() {
		info := fdrepair.Classify(entry.Set)
		fmt.Printf("  %-22s %s\n", entry.Name+":", fdrepair.ExplainTrace(info))
	}
}
