// Prioritized cleaning (Section 5 future work, Staworko et al.): when
// some sources are more trusted than others, priorities between
// conflicting tuples shrink the space of acceptable repairs — sometimes
// down to a single unambiguous repair. This example also counts and
// enumerates the subset repairs (the chain-FD-set counting connection
// of Section 2.2).
package main

import (
	"fmt"
	"log"

	"repro/fdrepair"
)

func main() {
	sc := fdrepair.MustSchema("Office", "facility", "room", "floor", "city")
	ds := fdrepair.MustFDs(sc, "facility -> city", "facility room -> floor")

	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"HQ", "322", "3", "Paris"}, 2)
	t.MustInsert(2, fdrepair.Tuple{"HQ", "322", "30", "Madrid"}, 1)
	t.MustInsert(3, fdrepair.Tuple{"HQ", "122", "1", "Madrid"}, 1)
	t.MustInsert(4, fdrepair.Tuple{"Lab1", "B35", "3", "London"}, 2)

	// Without priorities: several subset repairs exist.
	count, err := fdrepair.CountSRepairs(ds, t)
	if err != nil {
		log.Fatal(err)
	}
	reps, _, err := fdrepair.SubsetRepairs(ds, t, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the table has %v subset repairs (Δ is a chain, counted in polynomial time):\n", count)
	for _, r := range reps {
		fmt.Printf("  keep %v (deleted weight %g)\n", r.IDs(), fdrepair.DistSub(r, t))
	}

	// Tuple 1 comes from a curated feed: prefer it over its conflictors.
	r := fdrepair.NewPriority()
	r.Add(1, 2)
	r.Add(1, 3)

	rep, err := fdrepair.PrioritizedRepair(ds, t, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith tuple 1 preferred, the greedy completion repair keeps %v\n", rep.IDs())

	opt, err := fdrepair.ClassifyPrioritized(ds, t, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repairs: %d total, %d Pareto-optimal, %d globally-optimal\n",
		len(opt.All), len(opt.Pareto), len(opt.Global))

	unique, err := fdrepair.UnambiguousUnder(ds, t, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("priorities clean the database unambiguously: %v\n", unique)
}
