// Data cleaning: the paper's second motivation — use the optimal-repair
// cost as an educated estimate of how dirty a database is and how much
// cleaning effort remains (human-in-the-loop cleaning, Section 1).
//
// We synthesize an employee directory that starts consistent with its
// FDs and corrupt a controlled fraction of cells, then compare the
// estimated cleaning effort (optimal S-repair cost, 2-approx cost, and
// the U-repair cost) across dirtiness levels.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"repro/fdrepair"
	"repro/internal/workload"
)

func main() {
	sc := fdrepair.MustSchema("Employee", "emp", "dept", "building", "manager")
	// Each employee sits in one department; a department sits in one
	// building and has one manager — a chain-free but common-lhs-free
	// mix: {emp → dept, dept → building, dept → manager} has no common
	// lhs, so the optimal S-repair problem is APX-hard (dichotomy), and
	// the library falls back to guaranteed approximations.
	ds := fdrepair.MustFDs(sc,
		"emp -> dept",
		"dept -> building",
		"dept -> manager",
	)
	info := fdrepair.Classify(ds)
	fmt.Printf("FD set %v\n  S-repair poly: %v (%s)\n  U-repair exact: %v\n\n",
		ds, info.SRepairPolyTime, info.HardClass, info.URepairExact)

	rng := rand.New(rand.NewSource(2026))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dirty frac\ttuples\tviolating pairs\test. deletions (2-approx)\texact deletions\tU-repair cells (≤ratio)")
	for _, frac := range []float64{0.0, 0.05, 0.1, 0.2, 0.4} {
		t := workload.DirtyTable(sc, nil, 40, 6, frac, rng)
		pairs := len(t.ConflictGraph(ds))

		_, approxCost, err := fdrepair.ApproxSRepair(ds, t)
		if err != nil {
			log.Fatal(err)
		}
		_, exactCost, err := fdrepair.ExactSRepair(ds, t)
		if err != nil {
			log.Fatal(err)
		}
		ures, err := fdrepair.OptimalURepair(ds, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%.2f\t%d\t%d\t%.0f\t%.0f\t%.0f (ratio ≤ %g)\n",
			frac, t.Len(), pairs, approxCost, exactCost, ures.Cost, ures.RatioBound)
	}
	tw.Flush()
	fmt.Println("\nreading: the optimal-repair cost estimates the residual cleaning effort;")
	fmt.Println("the 2-approximation tracks it at a fraction of the cost on hard FD sets.")
}
