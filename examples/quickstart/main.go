// Quickstart: the paper's running example (Figure 1) end to end with
// the public API — build the Office table, check the dichotomy, and
// compute optimal subset and update repairs.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/fdrepair"
)

func main() {
	// Office(facility, room, floor, city) with the FDs of Example 2.2:
	// a facility is in one city; a room in a facility is on one floor.
	sc := fdrepair.MustSchema("Office", "facility", "room", "floor", "city")
	ds := fdrepair.MustFDs(sc,
		"facility -> city",
		"facility room -> floor",
	)

	// Table T of Figure 1(a). Weights express trust in each tuple.
	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"HQ", "322", "3", "Paris"}, 2)
	t.MustInsert(2, fdrepair.Tuple{"HQ", "322", "30", "Madrid"}, 1)
	t.MustInsert(3, fdrepair.Tuple{"HQ", "122", "1", "Madrid"}, 1)
	t.MustInsert(4, fdrepair.Tuple{"Lab1", "B35", "3", "London"}, 2)

	fmt.Println("input table:")
	fmt.Print(t.String())

	// The dichotomy: is this FD set repairable in polynomial time?
	info := fdrepair.Classify(ds)
	fmt.Printf("\ndichotomy: S-repair poly=%v, U-repair exact=%v\n",
		info.SRepairPolyTime, info.URepairExact)
	fmt.Printf("simplification chain: %s\n\n", fdrepair.ExplainTrace(info))

	// Optimal subset repair: delete the cheapest set of tuples.
	s, cost, err := fdrepair.OptimalSRepair(ds, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal S-repair deletes weight %g:\n%s\n", cost, s.String())

	// Optimal update repair: change the cheapest set of cells.
	res, err := fdrepair.OptimalURepair(ds, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal U-repair changes cost %g (%s):\n%s",
		res.Cost, res.Method, res.Update.String())

	// For serving traffic, give each request its own Solver: a worker
	// budget, a deadline, and per-solve counters — no process-wide
	// state is shared between concurrent solves.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	sv := fdrepair.NewSolver(
		fdrepair.WithParallelism(4),
		fdrepair.WithContext(ctx),
		fdrepair.WithStats(),
	)
	if _, cost, err = sv.OptimalSRepair(ds, t); err != nil {
		log.Fatal(err) // a missed deadline would surface here as context.DeadlineExceeded
	}
	st := sv.Stats()
	fmt.Printf("\nsolver run: dist_sub=%g, %d recursion nodes, %d blocks inline, arena %d hits / %d misses\n",
		cost, st.Nodes, st.BlocksSerial, st.ArenaHits, st.ArenaMisses)
}
