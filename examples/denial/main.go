// Denial constraints beyond FDs (Section 5 future work): a payroll
// table constrained by an FD ("one salary per employee") and an order
// constraint FDs cannot express ("a higher rank never earns less"),
// repaired together through the vertex-cover machinery that
// Proposition 3.3 builds for FDs.
package main

import (
	"fmt"
	"log"

	"repro/fdrepair"
)

func main() {
	sc := fdrepair.MustSchema("Payroll", "name", "rank", "salary")

	// FD: name → rank salary, as denial constraints.
	fds := fdrepair.MustFDs(sc, "name -> rank salary")
	cs, err := fdrepair.FDsAsDenial(fds)
	if err != nil {
		log.Fatal(err)
	}
	// Order constraint: no pair where t1 outranks t2 yet earns less.
	mono, err := fdrepair.ParseDenial(sc, "t1.rank > t2.rank & t1.salary < t2.salary")
	if err != nil {
		log.Fatal(err)
	}
	cs = append(cs, mono)

	t := fdrepair.NewTable(sc)
	t.MustInsert(1, fdrepair.Tuple{"ann", "3", "120"}, 2) // trusted
	t.MustInsert(2, fdrepair.Tuple{"ann", "3", "90"}, 1)  // duplicate entry, wrong salary
	t.MustInsert(3, fdrepair.Tuple{"bob", "2", "100"}, 1)
	t.MustInsert(4, fdrepair.Tuple{"eve", "4", "95"}, 1) // outranks everyone, earns least
	t.MustInsert(5, fdrepair.Tuple{"kim", "1", "80"}, 1)

	fmt.Println("payroll table:")
	fmt.Print(t.String())
	fmt.Printf("\nconstraints satisfied: %v\n\n", fdrepair.DenialSatisfies(cs, t))

	exact, cost, err := fdrepair.ExactDenialSRepair(cs, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal S-repair (deleted weight %g):\n%s\n", cost, exact.String())

	approx, acost, err := fdrepair.ApproxDenialSRepair(cs, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-approximation (deleted weight %g, guaranteed ≤ 2×optimal):\n%s",
		acost, approx.String())
}
